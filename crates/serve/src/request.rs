//! Request and completion types for the online task service.
//!
//! A *request* is one unit task (§2.2's "a set of unit tasks of the
//! same type"): a tenant asks for a [`Task`]-shaped piece of work with
//! a small workload, optionally bounded by a deadline. The service
//! groups compatible requests into batches; the *completion* reports
//! how the request fared and where its time went.

use mtvc_core::Task;
use mtvc_metrics::SimTime;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Identifies the tenant a request belongs to. Tenants share the
/// cluster; the queue arbitrates between them with deficit round-robin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Service-level-objective class of a request: how urgently the
/// scheduler should treat it relative to other traffic.
///
/// Classes drive the SLO-aware scheduler
/// ([`crate::SchedulerPolicy::SloAware`]): per-class DRR quanta weight
/// the workload share, earliest-deadline-first ordering favours
/// urgent heads within each DRR round, and the per-class sections of
/// [`crate::ServiceReport`] break latency and deadline outcomes out by
/// class. Under the baseline scheduler the class is carried and
/// reported but does not influence ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SloClass {
    /// User-facing traffic with tight deadlines (think an interactive
    /// query on a dashboard): smallest latency target, highest DRR
    /// weight.
    Interactive,
    /// Ordinary traffic with moderate latency expectations.
    Standard,
    /// Throughput-oriented background work; no meaningful latency
    /// target beyond eventual completion.
    Batch,
}

impl SloClass {
    /// Every class, in severity order — index matches
    /// [`SloClass::index`].
    pub const ALL: [SloClass; 3] = [SloClass::Interactive, SloClass::Standard, SloClass::Batch];

    /// Dense index for per-class arrays (0 = Interactive, 1 = Standard,
    /// 2 = Batch).
    pub fn index(self) -> usize {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::Batch => 2,
        }
    }

    /// Short lowercase label for reports and JSON keys.
    pub fn label(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }
}

impl std::fmt::Display for SloClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Unique id assigned to a request when it is submitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// One unit-task request as submitted by a tenant.
#[derive(Debug, Clone)]
pub struct TaskRequest {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Task shape and workload for this request. The workload is the
    /// request's size in the task's own unit (walks for BPPR, sources
    /// for MSSP/BKHS) and is never split across batches.
    pub task: Task,
    /// Drop the request (outcome [`RequestOutcome::Deadline`]) if it
    /// has not been dispatched within this long of submission.
    pub deadline: Option<Duration>,
    /// SLO class the scheduler and the per-class report sections use.
    pub class: SloClass,
}

impl TaskRequest {
    /// A deadline-free [`SloClass::Standard`] request.
    pub fn new(tenant: TenantId, task: Task) -> TaskRequest {
        TaskRequest {
            tenant,
            task,
            deadline: None,
            class: SloClass::Standard,
        }
    }

    /// Attach a dispatch deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> TaskRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Set the SLO class.
    pub fn with_class(mut self, class: SloClass) -> TaskRequest {
        self.class = class;
        self
    }

    /// Workload units this request contributes to a batch.
    pub fn workload(&self) -> u64 {
        self.task.workload()
    }
}

/// A request with the bookkeeping the queue attaches at submission.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// The id the service assigned on submit.
    pub id: RequestId,
    /// The request as submitted.
    pub request: TaskRequest,
    /// When the request entered the queue.
    pub submitted: Instant,
    /// Dispatch attempts already consumed: how many times a batch
    /// carrying this request failed and the request was re-queued.
    pub attempts: u32,
}

impl QueuedRequest {
    /// Whether the dispatch deadline has passed at `now`.
    pub fn expired(&self, now: Instant) -> bool {
        match self.request.deadline {
            Some(d) => now.duration_since(self.submitted) > d,
            None => false,
        }
    }

    /// Workload units this request contributes to a batch.
    pub fn workload(&self) -> u64 {
        self.request.workload()
    }

    /// Absolute instant the dispatch deadline expires (`None` for
    /// deadline-free requests). The EDF ordering key.
    pub fn deadline_at(&self) -> Option<Instant> {
        self.request.deadline.map(|d| self.submitted + d)
    }

    /// Remaining deadline slack at `now`: zero once expired, `None`
    /// without a deadline.
    pub fn slack(&self, now: Instant) -> Option<Duration> {
        self.deadline_at()
            .map(|at| at.saturating_duration_since(now))
    }
}

/// How a request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// Executed in a batch that completed within the cutoff.
    Served {
        /// Simulated running time of the batch that carried the request.
        batch_time: SimTime,
    },
    /// Dispatch deadline passed — while the request sat in the queue,
    /// or after its carrying batch failed and no retry could land
    /// before the deadline.
    Deadline,
    /// The admission controller predicts this request can never fit on
    /// the cluster, even alone on flushed machines.
    Rejected,
    /// The carrying batch overloaded (> 6000 s cutoff) or overflowed
    /// memory past the degradation ladder, and the retry budget is
    /// exhausted (or the queue refused the retry).
    Failed {
        /// Human-readable failure class ("overload" / "overflow").
        reason: &'static str,
    },
}

impl RequestOutcome {
    /// Whether the request was actually executed to completion.
    pub fn is_served(&self) -> bool {
        matches!(self, RequestOutcome::Served { .. })
    }
}

/// Everything the service reports back for one finished request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The id returned at submission.
    pub id: RequestId,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The request's SLO class.
    pub class: SloClass,
    /// Terminal outcome.
    pub outcome: RequestOutcome,
    /// Wall-clock time from submission until the request left the queue
    /// (dispatch, expiry, or rejection).
    pub queue_wait: Duration,
    /// Wall-clock time from submission until this completion was
    /// published.
    pub latency: Duration,
    /// Retries the request consumed before this terminal outcome
    /// (0 = settled on the first dispatch).
    pub attempts: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expiry_is_relative_to_submission() {
        let q = QueuedRequest {
            id: RequestId(1),
            request: TaskRequest::new(TenantId(0), Task::mssp(2))
                .with_deadline(Duration::from_millis(5)),
            submitted: Instant::now(),
            attempts: 0,
        };
        assert!(!q.expired(q.submitted));
        assert!(q.expired(q.submitted + Duration::from_millis(6)));
    }

    #[test]
    fn no_deadline_never_expires() {
        let q = QueuedRequest {
            id: RequestId(2),
            request: TaskRequest::new(TenantId(0), Task::bppr(4)),
            submitted: Instant::now(),
            attempts: 0,
        };
        assert!(!q.expired(q.submitted + Duration::from_secs(3600)));
        assert_eq!(q.workload(), 4);
    }
}
