//! Request and completion types for the online task service.
//!
//! A *request* is one unit task (§2.2's "a set of unit tasks of the
//! same type"): a tenant asks for a [`Task`]-shaped piece of work with
//! a small workload, optionally bounded by a deadline. The service
//! groups compatible requests into batches; the *completion* reports
//! how the request fared and where its time went.

use mtvc_core::Task;
use mtvc_metrics::SimTime;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Identifies the tenant a request belongs to. Tenants share the
/// cluster; the queue arbitrates between them with deficit round-robin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Unique id assigned to a request when it is submitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// One unit-task request as submitted by a tenant.
#[derive(Debug, Clone)]
pub struct TaskRequest {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Task shape and workload for this request. The workload is the
    /// request's size in the task's own unit (walks for BPPR, sources
    /// for MSSP/BKHS) and is never split across batches.
    pub task: Task,
    /// Drop the request (outcome [`RequestOutcome::Deadline`]) if it
    /// has not been dispatched within this long of submission.
    pub deadline: Option<Duration>,
}

impl TaskRequest {
    /// A deadline-free request.
    pub fn new(tenant: TenantId, task: Task) -> TaskRequest {
        TaskRequest {
            tenant,
            task,
            deadline: None,
        }
    }

    /// Attach a dispatch deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> TaskRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Workload units this request contributes to a batch.
    pub fn workload(&self) -> u64 {
        self.task.workload()
    }
}

/// A request with the bookkeeping the queue attaches at submission.
#[derive(Debug, Clone)]
pub struct QueuedRequest {
    /// The id the service assigned on submit.
    pub id: RequestId,
    /// The request as submitted.
    pub request: TaskRequest,
    /// When the request entered the queue.
    pub submitted: Instant,
    /// Dispatch attempts already consumed: how many times a batch
    /// carrying this request failed and the request was re-queued.
    pub attempts: u32,
}

impl QueuedRequest {
    /// Whether the dispatch deadline has passed at `now`.
    pub fn expired(&self, now: Instant) -> bool {
        match self.request.deadline {
            Some(d) => now.duration_since(self.submitted) > d,
            None => false,
        }
    }

    /// Workload units this request contributes to a batch.
    pub fn workload(&self) -> u64 {
        self.request.workload()
    }
}

/// How a request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// Executed in a batch that completed within the cutoff.
    Served {
        /// Simulated running time of the batch that carried the request.
        batch_time: SimTime,
    },
    /// Dispatch deadline passed — while the request sat in the queue,
    /// or after its carrying batch failed and no retry could land
    /// before the deadline.
    Deadline,
    /// The admission controller predicts this request can never fit on
    /// the cluster, even alone on flushed machines.
    Rejected,
    /// The carrying batch overloaded (> 6000 s cutoff) or overflowed
    /// memory past the degradation ladder, and the retry budget is
    /// exhausted (or the queue refused the retry).
    Failed {
        /// Human-readable failure class ("overload" / "overflow").
        reason: &'static str,
    },
}

impl RequestOutcome {
    /// Whether the request was actually executed to completion.
    pub fn is_served(&self) -> bool {
        matches!(self, RequestOutcome::Served { .. })
    }
}

/// Everything the service reports back for one finished request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The id returned at submission.
    pub id: RequestId,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Terminal outcome.
    pub outcome: RequestOutcome,
    /// Wall-clock time from submission until the request left the queue
    /// (dispatch, expiry, or rejection).
    pub queue_wait: Duration,
    /// Wall-clock time from submission until this completion was
    /// published.
    pub latency: Duration,
    /// Retries the request consumed before this terminal outcome
    /// (0 = settled on the first dispatch).
    pub attempts: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expiry_is_relative_to_submission() {
        let q = QueuedRequest {
            id: RequestId(1),
            request: TaskRequest::new(TenantId(0), Task::mssp(2))
                .with_deadline(Duration::from_millis(5)),
            submitted: Instant::now(),
            attempts: 0,
        };
        assert!(!q.expired(q.submitted));
        assert!(q.expired(q.submitted + Duration::from_millis(6)));
    }

    #[test]
    fn no_deadline_never_expires() {
        let q = QueuedRequest {
            id: RequestId(2),
            request: TaskRequest::new(TenantId(0), Task::bppr(4)),
            submitted: Instant::now(),
            attempts: 0,
        };
        assert!(!q.expired(q.submitted + Duration::from_secs(3600)));
        assert_eq!(q.workload(), 4);
    }
}
