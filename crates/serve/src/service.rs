//! The online task service: queue → admission → batch former → worker
//! pool → completions.
//!
//! [`TaskService::start`] trains the §5 memory model for every
//! supported task shape (light `2^r` probes, Levenberg–Marquardt fit),
//! then spawns one *batch former* thread and a pool of *worker*
//! threads. Tenants submit unit-task requests and receive a [`Ticket`]
//! they can block on; the former packs compatible requests into the
//! largest batch the admission controller allows and hands it to the
//! pool over a bounded crossbeam channel; workers execute batches on
//! the simulated cluster and publish per-request completions together
//! with queue-wait / end-to-end latency histograms.
//! [`TaskService::shutdown`] closes the queue, drains everything still
//! queued or in flight, joins the threads, and returns the final
//! [`ServiceReport`].

use crate::admission::AdmissionController;
use crate::queue::{same_shape, DrrQueue, SubmitError};
use crate::request::{Completion, QueuedRequest, RequestId, RequestOutcome, TaskRequest};
use mtvc_cluster::ClusterSpec;
use mtvc_core::{select_sources, BatchRunner, Task};
use mtvc_graph::hash::mix64;
use mtvc_graph::Graph;
use mtvc_metrics::{Histogram, RunOutcome, SimTime, OVERLOAD_CUTOFF};
use mtvc_systems::SystemKind;
use mtvc_tune::{train, FitError, OnlineMemoryModel};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`TaskService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Vertex-centric system profile batches execute under.
    pub system: SystemKind,
    /// The shared cluster all tenants run on.
    pub cluster: ClusterSpec,
    /// Task shapes the service accepts (workload fields are ignored;
    /// one memory model is trained per shape at startup).
    pub shapes: Vec<Task>,
    /// Worker threads executing batches concurrently.
    pub workers: usize,
    /// Queue capacity in requests (backpressure bound).
    pub queue_capacity: usize,
    /// DRR quantum in workload units per tenant per round.
    pub quantum: u64,
    /// Overload threshold `p` of Eq. 1–2 (fraction of usable memory a
    /// machine may reach before the run is considered strained).
    pub overload_p: f64,
    /// Completed batches per flush epoch: results aggregate and
    /// residual memory releases every this many batches.
    pub flush_every: usize,
    /// Hard cap on a single batch's workload, independent of headroom.
    pub max_batch: u64,
    /// Workload the training phase probes towards (`2^r ≤ max(8, this/4)`).
    pub training_workload: u64,
    /// Seed for training, source selection, and batch execution.
    pub seed: u64,
    /// Override for the engine's parallel cutover (vertex count at
    /// which batches execute on the engine's persistent worker pool);
    /// `None` keeps [`mtvc_engine::PARALLEL_VERTEX_THRESHOLD`].
    pub parallel_vertex_threshold: Option<usize>,
}

impl ServiceConfig {
    /// Defaults mirroring the paper's tuner: `p = 0.85`, light training
    /// probes, two workers, a 256-request queue.
    pub fn new(system: SystemKind, cluster: ClusterSpec) -> ServiceConfig {
        ServiceConfig {
            system,
            cluster,
            shapes: Vec::new(),
            workers: 2,
            queue_capacity: 256,
            quantum: 8,
            overload_p: 0.85,
            flush_every: 4,
            max_batch: 1 << 20,
            training_workload: 256,
            seed: 0x5EED,
            parallel_vertex_threshold: None,
        }
    }

    /// Override the vertex count at which batches execute on the
    /// engine's persistent worker pool.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_vertex_threshold = Some(threshold);
        self
    }

    /// Add a supported task shape.
    pub fn with_shape(mut self, shape: Task) -> Self {
        self.shapes.push(shape);
        self
    }

    /// Set the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1);
        self.workers = workers;
        self
    }

    /// Set the queue capacity (requests).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the DRR quantum (workload units).
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        self.quantum = quantum;
        self
    }

    /// Set the overload threshold `p`.
    pub fn with_overload_p(mut self, p: f64) -> Self {
        self.overload_p = p;
        self
    }

    /// Set the flush-epoch length in batches.
    pub fn with_flush_every(mut self, every: usize) -> Self {
        self.flush_every = every;
        self
    }

    /// Set the per-batch workload cap.
    pub fn with_max_batch(mut self, cap: u64) -> Self {
        assert!(cap >= 1);
        self.max_batch = cap;
        self
    }

    /// Set the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Why [`TaskService::start`] failed.
#[derive(Debug)]
pub enum StartError {
    /// `shapes` was empty.
    NoShapes,
    /// The memory-model fit for a shape did not converge.
    Fit {
        /// The shape whose training data could not be fitted.
        shape: Task,
        /// The underlying fitter error.
        source: FitError,
    },
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::NoShapes => write!(f, "service needs at least one task shape"),
            StartError::Fit { shape, source } => {
                write!(f, "memory-model fit failed for {shape}: {source}")
            }
        }
    }
}

impl std::error::Error for StartError {}

/// Handle for one submitted request; resolves to its [`Completion`].
#[derive(Debug, Clone)]
pub struct Ticket {
    id: RequestId,
    slot: Arc<Slot>,
}

#[derive(Debug, Default)]
struct Slot {
    done: Mutex<Option<Completion>>,
    cv: Condvar,
}

impl Ticket {
    /// The id the service assigned to the request.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Block until the request finishes.
    pub fn wait(&self) -> Completion {
        let mut done = self.slot.done.lock().unwrap();
        loop {
            if let Some(c) = done.take() {
                return c;
            }
            done = self.slot.cv.wait(done).unwrap();
        }
    }

    /// The completion, if already published.
    pub fn try_get(&self) -> Option<Completion> {
        self.slot.done.lock().unwrap().take()
    }
}

/// Final statistics returned by [`TaskService::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Requests executed to completion.
    pub served: u64,
    /// Requests dropped on their dispatch deadline.
    pub expired: u64,
    /// Requests that could never fit the cluster.
    pub rejected: u64,
    /// Requests whose batch overloaded or overflowed.
    pub failed: u64,
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Flush epochs completed (residual-memory releases).
    pub flushes: u64,
    /// Online memory-model refits across shapes.
    pub refits: u64,
    /// Batches that exceeded the 6000 s cutoff.
    pub overload_batches: u64,
    /// Batches that exhausted machine memory.
    pub overflow_batches: u64,
    /// Wall-clock queue wait per request, microseconds.
    pub queue_wait: Histogram,
    /// Wall-clock end-to-end latency per request, microseconds.
    pub latency: Histogram,
    /// Simulated batch running time, milliseconds.
    pub service_time: Histogram,
    /// Workload units per dispatched batch.
    pub batch_workload: Histogram,
    /// Highest queue depth observed (requests).
    pub max_queue_depth: u64,
    /// Total simulated cluster time across batches.
    pub total_sim_time: SimTime,
}

impl ServiceReport {
    /// Total requests that reached a terminal outcome.
    pub fn requests(&self) -> u64 {
        self.served + self.expired + self.rejected + self.failed
    }
}

#[derive(Debug)]
struct MetricsState {
    served: u64,
    expired: u64,
    rejected: u64,
    failed: u64,
    batches: u64,
    overload_batches: u64,
    overflow_batches: u64,
    queue_wait: Histogram,
    latency: Histogram,
    service_time: Histogram,
    batch_workload: Histogram,
    total_sim_time: SimTime,
}

impl MetricsState {
    fn new() -> MetricsState {
        MetricsState {
            served: 0,
            expired: 0,
            rejected: 0,
            failed: 0,
            batches: 0,
            overload_batches: 0,
            overflow_batches: 0,
            queue_wait: Histogram::new(),
            latency: Histogram::new(),
            service_time: Histogram::new(),
            batch_workload: Histogram::new(),
            total_sim_time: SimTime::ZERO,
        }
    }
}

struct Shared {
    queue: DrrQueue,
    admission: Mutex<AdmissionController>,
    /// Signalled by workers whenever a completion frees headroom.
    headroom: Condvar,
    pending: Mutex<HashMap<RequestId, Arc<Slot>>>,
    metrics: Mutex<MetricsState>,
    shapes: Vec<Task>,
}

/// A batch formed by the scheduler, in flight to a worker.
struct FormedBatch {
    id: u64,
    shape: Task,
    workload: u64,
    requests: Vec<QueuedRequest>,
    /// Per-machine residual snapshot the batch starts against.
    residual: Vec<u64>,
    dispatched: Instant,
}

/// The running service. Dropping it shuts down without a report;
/// prefer [`TaskService::shutdown`].
pub struct TaskService {
    shared: Arc<Shared>,
    next_id: AtomicU64,
    former: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TaskService {
    /// Train the memory model for every shape, fit it, and spawn the
    /// former and worker threads. Training cost is the §5 "minor"
    /// probe cost, paid once here.
    pub fn start(graph: Arc<Graph>, cfg: ServiceConfig) -> Result<TaskService, StartError> {
        if cfg.shapes.is_empty() {
            return Err(StartError::NoShapes);
        }
        let mut admission = AdmissionController::new(&cfg.cluster, cfg.overload_p, cfg.flush_every);
        let mut runners: Vec<(Task, Arc<BatchRunner>)> = Vec::new();
        for (i, &shape) in cfg.shapes.iter().enumerate() {
            if admission.supports(&shape) {
                continue; // duplicate shape in the config
            }
            let probe_task = shape.with_workload(cfg.training_workload);
            let data = train(
                &graph,
                probe_task,
                cfg.system,
                &cfg.cluster,
                cfg.seed ^ mix64(i as u64 + 1),
            );
            let model = OnlineMemoryModel::fit(&data, cfg.seed)
                .map_err(|source| StartError::Fit { shape, source })?;
            admission.register(shape, model);
            let mut runner =
                BatchRunner::new(graph.clone(), shape, cfg.system, cfg.cluster.clone());
            if let Some(t) = cfg.parallel_vertex_threshold {
                runner = runner.with_parallel_threshold(t);
            }
            runners.push((shape, Arc::new(runner)));
        }

        let shared = Arc::new(Shared {
            queue: DrrQueue::new(cfg.queue_capacity, cfg.quantum),
            admission: Mutex::new(admission),
            headroom: Condvar::new(),
            pending: Mutex::new(HashMap::new()),
            metrics: Mutex::new(MetricsState::new()),
            shapes: cfg.shapes.iter().map(|s| s.with_workload(1)).collect(),
        });

        let (tx, rx) = crossbeam::channel::bounded::<FormedBatch>(cfg.workers);
        let mut workers = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let rx = rx.clone();
            let shared = shared.clone();
            let runners = runners.clone();
            let seed = cfg.seed;
            workers.push(std::thread::spawn(move || {
                worker_loop(&shared, &runners, seed, rx)
            }));
        }
        drop(rx);

        let former = {
            let shared = shared.clone();
            let max_batch = cfg.max_batch;
            std::thread::spawn(move || former_loop(&shared, max_batch, tx))
        };

        Ok(TaskService {
            shared,
            next_id: AtomicU64::new(0),
            former: Some(former),
            workers,
        })
    }

    /// Submit a request, blocking while the queue is at capacity
    /// (backpressure). Returns a [`Ticket`] resolving to the
    /// completion.
    pub fn submit(&self, request: TaskRequest) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, true)
    }

    /// Submit without blocking; fails with [`SubmitError::Full`] when
    /// the queue is at capacity.
    pub fn try_submit(&self, request: TaskRequest) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, false)
    }

    fn submit_inner(&self, request: TaskRequest, block: bool) -> Result<Ticket, SubmitError> {
        if request.workload() == 0 {
            return Err(SubmitError::Empty);
        }
        if !self
            .shared
            .shapes
            .iter()
            .any(|s| same_shape(s, &request.task))
        {
            return Err(SubmitError::Unsupported);
        }
        let id = RequestId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let slot = Arc::new(Slot::default());
        self.shared.pending.lock().unwrap().insert(id, slot.clone());
        let queued = QueuedRequest {
            id,
            request,
            submitted: Instant::now(),
        };
        let res = if block {
            self.shared.queue.submit_blocking(queued)
        } else {
            self.shared.queue.try_submit(queued)
        };
        match res {
            Ok(()) => Ok(Ticket { id, slot }),
            Err(e) => {
                self.shared.pending.lock().unwrap().remove(&id);
                Err(e)
            }
        }
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Largest workload a `shape` batch could carry right now, given
    /// current residual and in-flight reservations.
    pub fn admissible_now(&self, shape: &Task) -> u64 {
        self.shared.admission.lock().unwrap().max_admissible(shape)
    }

    /// Largest workload a `shape` batch could ever carry (idle, flushed
    /// cluster) — requests above this are rejected outright.
    pub fn admissible_max(&self, shape: &Task) -> u64 {
        self.shared.admission.lock().unwrap().max_possible(shape)
    }

    /// Live queue-depth gauge (with high-water mark).
    pub fn queue_depth(&self) -> mtvc_metrics::Gauge {
        self.shared.queue.depth()
    }

    /// Stop accepting requests, drain everything queued and in flight,
    /// join all threads, and return the final report.
    pub fn shutdown(mut self) -> ServiceReport {
        self.stop();
        let m = self.shared.metrics.lock().unwrap();
        let ac = self.shared.admission.lock().unwrap();
        ServiceReport {
            served: m.served,
            expired: m.expired,
            rejected: m.rejected,
            failed: m.failed,
            batches: m.batches,
            flushes: ac.flushes(),
            refits: ac.refits(),
            overload_batches: m.overload_batches,
            overflow_batches: m.overflow_batches,
            queue_wait: m.queue_wait.clone(),
            latency: m.latency.clone(),
            service_time: m.service_time.clone(),
            batch_workload: m.batch_workload.clone(),
            max_queue_depth: self.shared.queue.depth().high_water(),
            total_sim_time: m.total_sim_time,
        }
    }

    fn stop(&mut self) {
        self.shared.queue.close();
        if let Some(former) = self.former.take() {
            let _ = former.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for TaskService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Publish a terminal outcome for one request.
fn finish(
    shared: &Shared,
    req: QueuedRequest,
    outcome: RequestOutcome,
    dispatched: Option<Instant>,
) {
    let now = Instant::now();
    let queue_wait = dispatched.unwrap_or(now).duration_since(req.submitted);
    let latency = now.duration_since(req.submitted);
    {
        let mut m = shared.metrics.lock().unwrap();
        match &outcome {
            RequestOutcome::Served { .. } => m.served += 1,
            RequestOutcome::Expired => m.expired += 1,
            RequestOutcome::Rejected => m.rejected += 1,
            RequestOutcome::Failed { .. } => m.failed += 1,
        }
        m.queue_wait.record(queue_wait.as_micros() as u64);
        m.latency.record(latency.as_micros() as u64);
    }
    let completion = Completion {
        id: req.id,
        tenant: req.request.tenant,
        outcome,
        queue_wait,
        latency,
    };
    let slot = shared.pending.lock().unwrap().remove(&req.id);
    if let Some(slot) = slot {
        *slot.done.lock().unwrap() = Some(completion);
        slot.cv.notify_all();
    }
}

/// How long the former waits for worker completions before rechecking
/// headroom (a safety valve; the headroom condvar is the fast path).
const HEADROOM_POLL: Duration = Duration::from_millis(20);

fn former_loop(shared: &Shared, max_batch: u64, tx: crossbeam::channel::Sender<FormedBatch>) {
    while let Some(shape) = shared.queue.next_shape_blocking() {
        let w_max = {
            let ac = shared.admission.lock().unwrap();
            ac.max_admissible(&shape).min(max_batch)
        };
        if w_max >= 1 {
            let round = shared.queue.take_batch(&shape, w_max, Instant::now());
            for req in round.expired {
                finish(shared, req, RequestOutcome::Expired, None);
            }
            if !round.taken.is_empty() {
                let workload: u64 = round.taken.iter().map(|r| r.workload()).sum();
                let (id, residual) = {
                    let mut ac = shared.admission.lock().unwrap();
                    ac.reserve(&shape, workload)
                };
                let batch = FormedBatch {
                    id,
                    shape,
                    workload,
                    requests: round.taken,
                    residual,
                    dispatched: Instant::now(),
                };
                // Bounded channel: blocks when every worker is busy.
                if tx.send(batch).is_err() {
                    return; // workers are gone; shutting down
                }
                continue;
            }
        }
        // Nothing was taken: the ring head does not fit the current
        // headroom (or the budget is zero).
        let Some(w_head) = shared.queue.head_workload(&shape) else {
            continue; // head expired away or shape rotated; re-peek
        };
        let mut ac = shared.admission.lock().unwrap();
        if w_head > ac.max_possible(&shape).min(max_batch) {
            // Cannot fit even an idle, flushed cluster: reject.
            drop(ac);
            if let Some(req) = shared.queue.pop_head(&shape) {
                finish(shared, req, RequestOutcome::Rejected, None);
            }
            continue;
        }
        if w_head <= w_max {
            // Fits the headroom; the DRR deficit just has not built up
            // yet. Loop again — every round banks another quantum.
            continue;
        }
        if ac.has_inflight() {
            // Wait for a worker to free headroom.
            let _ = shared.headroom.wait_timeout(ac, HEADROOM_POLL);
            continue;
        }
        if ac.has_residual() {
            // Idle cluster blocked only by unshipped results: close the
            // flush epoch early and re-check.
            ac.flush();
            continue;
        }
        // No in-flight work, no residual, yet w_head > w_max: the
        // model's idle admission equals max_possible, so this is
        // unreachable; guard against a pathological fit by rejecting.
        drop(ac);
        if let Some(req) = shared.queue.pop_head(&shape) {
            finish(shared, req, RequestOutcome::Rejected, None);
        }
    }
}

fn worker_loop(
    shared: &Shared,
    runners: &[(Task, Arc<BatchRunner>)],
    seed: u64,
    rx: crossbeam::channel::Receiver<FormedBatch>,
) {
    while let Ok(batch) = rx.recv() {
        let runner = &runners
            .iter()
            .find(|(s, _)| same_shape(s, &batch.shape))
            .expect("dispatched batch of unregistered shape")
            .1;
        let batch_seed = seed ^ mix64(batch.id.wrapping_add(0xB42C));
        let sources = match batch.shape {
            Task::Bppr { .. } => Vec::new(),
            Task::Mssp { .. } | Task::Bkhs { .. } => {
                select_sources(runner.graph(), batch.workload, batch_seed)
            }
        };
        let exec = runner.run_batch(
            batch.workload,
            &sources,
            &batch.residual,
            batch_seed,
            OVERLOAD_CUTOFF,
        );
        {
            let mut ac = shared.admission.lock().unwrap();
            ac.complete(
                batch.id,
                &batch.shape,
                batch.workload,
                exec.peak_memory.as_f64(),
                &batch.residual,
                &exec.residual_delta,
            );
        }
        shared.headroom.notify_all();
        {
            let mut m = shared.metrics.lock().unwrap();
            m.batches += 1;
            m.batch_workload.record(batch.workload);
            m.total_sim_time += exec.time;
            m.service_time
                .record((exec.time.as_secs() * 1e3).round() as u64);
            match exec.outcome {
                RunOutcome::Completed(_) => {}
                RunOutcome::Overload => m.overload_batches += 1,
                RunOutcome::Overflow => m.overflow_batches += 1,
            }
        }
        let outcome = match exec.outcome {
            RunOutcome::Completed(t) => RequestOutcome::Served { batch_time: t },
            RunOutcome::Overload => RequestOutcome::Failed { reason: "overload" },
            RunOutcome::Overflow => RequestOutcome::Failed { reason: "overflow" },
        };
        for req in batch.requests {
            finish(shared, req, outcome.clone(), Some(batch.dispatched));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TenantId;
    use mtvc_graph::generators;

    fn small_service(shapes: &[Task]) -> TaskService {
        let graph = Arc::new(generators::power_law(300, 1400, 2.4, 11));
        let mut cfg = ServiceConfig::new(SystemKind::PregelPlus, ClusterSpec::galaxy(4))
            .with_workers(2)
            .with_quantum(16)
            .with_seed(0xC0FFEE);
        cfg.training_workload = 64;
        for &s in shapes {
            cfg = cfg.with_shape(s);
        }
        TaskService::start(graph, cfg).expect("service starts")
    }

    #[test]
    fn serves_a_mixed_stream_to_completion() {
        let svc = small_service(&[Task::mssp(1), Task::bppr(1)]);
        let mut tickets = Vec::new();
        for i in 0..20u64 {
            let tenant = TenantId((i % 3) as u32);
            let task = if i % 2 == 0 {
                Task::mssp(2)
            } else {
                Task::bppr(4)
            };
            tickets.push(svc.submit(TaskRequest::new(tenant, task)).unwrap());
        }
        for t in &tickets {
            let c = t.wait();
            assert!(c.outcome.is_served(), "{:?}", c.outcome);
            assert!(c.latency >= c.queue_wait);
        }
        let report = svc.shutdown();
        assert_eq!(report.served, 20);
        assert_eq!(report.requests(), 20);
        assert_eq!(report.overload_batches, 0);
        assert_eq!(report.overflow_batches, 0);
        assert!(report.batches >= 1);
        assert_eq!(report.latency.count(), 20);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let svc = small_service(&[Task::mssp(1)]);
        let tickets: Vec<Ticket> = (0..10)
            .map(|i| {
                svc.submit(TaskRequest::new(TenantId(i % 2), Task::mssp(1)))
                    .unwrap()
            })
            .collect();
        let report = svc.shutdown();
        assert_eq!(report.served, 10);
        for t in tickets {
            assert!(t.try_get().is_some());
        }
    }

    #[test]
    fn unsupported_shape_is_refused_at_submit() {
        let svc = small_service(&[Task::mssp(1)]);
        let err = svc
            .submit(TaskRequest::new(TenantId(0), Task::bkhs(1)))
            .unwrap_err();
        assert_eq!(err, SubmitError::Unsupported);
        svc.shutdown();
    }

    #[test]
    fn oversized_request_is_rejected_not_hung() {
        let svc = small_service(&[Task::bppr(1)]);
        // A single request far beyond any admissible batch.
        let t = svc
            .submit(TaskRequest::new(TenantId(0), Task::bppr(u64::MAX / 2)))
            .unwrap();
        let c = t.wait();
        assert_eq!(c.outcome, RequestOutcome::Rejected);
        let report = svc.shutdown();
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn submissions_after_shutdown_fail_closed() {
        let svc = small_service(&[Task::mssp(1)]);
        svc.shared.queue.close();
        let err = svc
            .submit(TaskRequest::new(TenantId(0), Task::mssp(1)))
            .unwrap_err();
        assert_eq!(err, SubmitError::Closed);
        svc.shutdown();
    }

    #[test]
    fn expired_requests_report_expired() {
        let svc = small_service(&[Task::mssp(1)]);
        // Deadline already passed relative to a backdated submission.
        let t = svc
            .submit(
                TaskRequest::new(TenantId(0), Task::mssp(1)).with_deadline(Duration::from_nanos(1)),
            )
            .unwrap();
        let c = t.wait();
        // Either it expired in the queue, or the former dispatched it
        // before the deadline check saw it — both are terminal.
        assert!(matches!(
            c.outcome,
            RequestOutcome::Expired | RequestOutcome::Served { .. }
        ));
        svc.shutdown();
    }
}
