//! The online task service: queue → admission → batch former → worker
//! pool → completions.
//!
//! [`TaskService::start`] trains the §5 memory model for every
//! supported task shape (light `2^r` probes, Levenberg–Marquardt fit),
//! then spawns one *batch former* thread and a pool of *worker*
//! threads. Tenants submit unit-task requests and receive a [`Ticket`]
//! they can block on; the former packs compatible requests into the
//! largest batch the admission controller allows and hands it to the
//! pool over a bounded crossbeam channel; workers execute batches on
//! the simulated cluster and publish per-request completions together
//! with queue-wait / end-to-end latency histograms.
//! [`TaskService::shutdown`] closes the queue, drains everything still
//! queued or in flight, joins the threads, and returns the final
//! [`ServiceReport`].

use crate::admission::{AdmissionController, AdmissionError};
use crate::controller::{ControllerCfg, ControllerStats, JointController, SchedulerPolicy};
use crate::health::{BrownoutCfg, BrownoutDecision, BrownoutReport, BrownoutState};
use crate::queue::{same_shape, DrrQueue, QueuePolicy, SubmitError};
use crate::request::{Completion, QueuedRequest, RequestId, RequestOutcome, SloClass, TaskRequest};
use mtvc_cluster::{ClusterSpec, FaultPlan};
use mtvc_core::{select_sources, BatchRunner, RecoveryPolicy, Task};
use mtvc_graph::hash::mix64;
use mtvc_graph::Graph;
use mtvc_metrics::{Bytes, Histogram, RunOutcome, SimTime, TimedSeries, OVERLOAD_CUTOFF};
use mtvc_systems::SystemKind;
use mtvc_tune::{train, FitError, OnlineLatencyModel, OnlineMemoryModel};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`TaskService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Vertex-centric system profile batches execute under.
    pub system: SystemKind,
    /// The shared cluster all tenants run on.
    pub cluster: ClusterSpec,
    /// Task shapes the service accepts (workload fields are ignored;
    /// one memory model is trained per shape at startup).
    pub shapes: Vec<Task>,
    /// Worker threads executing batches concurrently.
    pub workers: usize,
    /// Queue capacity in requests (backpressure bound).
    pub queue_capacity: usize,
    /// DRR quantum in workload units per tenant per round.
    pub quantum: u64,
    /// Overload threshold `p` of Eq. 1–2 (fraction of usable memory a
    /// machine may reach before the run is considered strained).
    pub overload_p: f64,
    /// Completed batches per flush epoch: results aggregate and
    /// residual memory releases every this many batches.
    pub flush_every: usize,
    /// Hard cap on a single batch's workload, independent of headroom.
    pub max_batch: u64,
    /// Workload the training phase probes towards (`2^r ≤ max(8, this/4)`).
    pub training_workload: u64,
    /// Seed for training, source selection, and batch execution.
    pub seed: u64,
    /// Override for the engine's parallel cutover (vertex count at
    /// which batches execute on the engine's persistent worker pool);
    /// `None` keeps [`mtvc_engine::PARALLEL_VERTEX_THRESHOLD`].
    pub parallel_vertex_threshold: Option<usize>,
    /// Times a request whose carrying batch failed is re-queued before
    /// the failure becomes terminal.
    pub retry_budget: u32,
    /// Base delay of the exponential retry backoff (doubles per
    /// attempt, plus deterministic jitter).
    pub retry_backoff: Duration,
    /// Hard cap on a single retry's backoff delay.
    pub retry_backoff_cap: Duration,
    /// Engine checkpoint cadence: rounds between superstep snapshots
    /// inside every batch (drives rollback-and-replay recovery).
    pub checkpoint_every: usize,
    /// Fault plan injected into every batch — chaos testing. `None`
    /// runs fault-free.
    pub chaos: Option<FaultPlan>,
    /// Maximum bisection depth of the OOM degradation ladder: a killed
    /// batch shrinks to at most `workload / 2^ladder_depth` before the
    /// overflow becomes terminal.
    pub ladder_depth: u32,
    /// Which scheduler forms batches: the PR-1 baseline or the
    /// SLO-aware scheduler (EDF-within-DRR, class-weighted quanta, and
    /// the joint batching/parallelism controller).
    pub scheduler: SchedulerPolicy,
    /// Brownout ladder configuration: with `Some`, per-worker health
    /// tracking and a circuit breaker drive a degradation ladder that
    /// defers [`SloClass::Batch`], then [`SloClass::Standard`], then
    /// narrows the batch budget — protecting
    /// [`SloClass::Interactive`] deadlines under sustained faults.
    /// `None` (the default) serves every class unconditionally.
    pub brownout: Option<BrownoutCfg>,
}

impl ServiceConfig {
    /// Defaults mirroring the paper's tuner: `p = 0.85`, light training
    /// probes, two workers, a 256-request queue.
    pub fn new(system: SystemKind, cluster: ClusterSpec) -> ServiceConfig {
        ServiceConfig {
            system,
            cluster,
            shapes: Vec::new(),
            workers: 2,
            queue_capacity: 256,
            quantum: 8,
            overload_p: 0.85,
            flush_every: 4,
            max_batch: 1 << 20,
            training_workload: 256,
            seed: 0x5EED,
            parallel_vertex_threshold: None,
            retry_budget: 2,
            retry_backoff: Duration::from_micros(500),
            retry_backoff_cap: Duration::from_millis(20),
            checkpoint_every: 8,
            chaos: None,
            ladder_depth: 4,
            scheduler: SchedulerPolicy::BaselineDrr,
            brownout: None,
        }
    }

    /// Pick the scheduler policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Override the vertex count at which batches execute on the
    /// engine's persistent worker pool.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_vertex_threshold = Some(threshold);
        self
    }

    /// Add a supported task shape.
    pub fn with_shape(mut self, shape: Task) -> Self {
        self.shapes.push(shape);
        self
    }

    /// Set the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1);
        self.workers = workers;
        self
    }

    /// Set the queue capacity (requests).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Set the DRR quantum (workload units).
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        self.quantum = quantum;
        self
    }

    /// Set the overload threshold `p`.
    pub fn with_overload_p(mut self, p: f64) -> Self {
        self.overload_p = p;
        self
    }

    /// Set the flush-epoch length in batches.
    pub fn with_flush_every(mut self, every: usize) -> Self {
        self.flush_every = every;
        self
    }

    /// Set the per-batch workload cap.
    pub fn with_max_batch(mut self, cap: u64) -> Self {
        assert!(cap >= 1);
        self.max_batch = cap;
        self
    }

    /// Set the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the per-request retry budget for failed batches.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }

    /// Set the retry backoff base and cap.
    pub fn with_retry_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.retry_backoff = base;
        self.retry_backoff_cap = cap;
        self
    }

    /// Set the engine checkpoint cadence (rounds between snapshots).
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Inject a fault plan into every batch (chaos testing).
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Set the OOM degradation ladder's maximum bisection depth.
    pub fn with_ladder_depth(mut self, depth: u32) -> Self {
        self.ladder_depth = depth;
        self
    }

    /// Arm the brownout ladder ([`ServiceConfig::brownout`]).
    pub fn with_brownout(mut self, cfg: BrownoutCfg) -> Self {
        self.brownout = Some(cfg);
        self
    }
}

/// Why [`TaskService::start`] failed.
#[derive(Debug)]
pub enum StartError {
    /// `shapes` was empty.
    NoShapes,
    /// The memory-model fit for a shape did not converge.
    Fit {
        /// The shape whose training data could not be fitted.
        shape: Task,
        /// The underlying fitter error.
        source: FitError,
    },
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::NoShapes => write!(f, "service needs at least one task shape"),
            StartError::Fit { shape, source } => {
                write!(f, "memory-model fit failed for {shape}: {source}")
            }
        }
    }
}

impl std::error::Error for StartError {}

/// Handle for one submitted request; resolves to its [`Completion`].
#[derive(Debug, Clone)]
pub struct Ticket {
    id: RequestId,
    slot: Arc<Slot>,
}

#[derive(Debug, Default)]
struct Slot {
    done: Mutex<Option<Completion>>,
    cv: Condvar,
}

impl Ticket {
    /// The id the service assigned to the request.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Block until the request finishes.
    pub fn wait(&self) -> Completion {
        let mut done = self.slot.done.lock().unwrap();
        loop {
            if let Some(c) = done.take() {
                return c;
            }
            done = self.slot.cv.wait(done).unwrap();
        }
    }

    /// The completion, if already published.
    pub fn try_get(&self) -> Option<Completion> {
        self.slot.done.lock().unwrap().take()
    }
}

/// Per-[`SloClass`] slice of the service report: how one tenant class
/// fared, independent of the others.
#[derive(Debug, Clone, Default)]
pub struct ClassReport {
    /// Requests of this class executed to completion.
    pub served: u64,
    /// Requests of this class dropped on their dispatch deadline.
    pub deadline: u64,
    /// Requests of this class that could never fit the cluster.
    pub rejected: u64,
    /// Requests of this class whose batch failed terminally.
    pub failed: u64,
    /// Served requests of this class that carried a deadline — i.e.
    /// deadlines *met* (`deadline` above counts the misses).
    pub deadline_met: u64,
    /// Of the `deadline` misses, how many expired while still queued
    /// (never dispatched), as opposed to after a failed batch.
    pub expired_in_queue: u64,
    /// Time-in-queue of the in-queue expiries, microseconds — stamped
    /// inside the queue lock at removal.
    pub expired_wait: Histogram,
    /// End-to-end latency of this class's requests, microseconds.
    pub latency: Histogram,
    /// Queue wait of this class's requests, microseconds.
    pub queue_wait: Histogram,
}

impl ClassReport {
    /// Fraction of this class's deadline-carrying requests that were
    /// served in time (`NaN` when none carried a deadline).
    pub fn deadline_hit_rate(&self) -> f64 {
        let total = self.deadline_met + self.deadline;
        self.deadline_met as f64 / total as f64
    }
}

/// Final statistics returned by [`TaskService::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Requests executed to completion.
    pub served: u64,
    /// Requests dropped on their dispatch deadline (queued or after a
    /// failed batch their retries could not redeem in time).
    pub deadline: u64,
    /// Requests that could never fit the cluster.
    pub rejected: u64,
    /// Requests whose batch overloaded or overflowed and whose retry
    /// budget is exhausted.
    pub failed: u64,
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Flush epochs completed (residual-memory releases).
    pub flushes: u64,
    /// Online memory-model refits across shapes.
    pub refits: u64,
    /// Batches that exceeded the 6000 s cutoff.
    pub overload_batches: u64,
    /// Batches that exhausted machine memory.
    pub overflow_batches: u64,
    /// Wall-clock queue wait per request, microseconds.
    pub queue_wait: Histogram,
    /// Wall-clock end-to-end latency per request, microseconds.
    pub latency: Histogram,
    /// Simulated batch running time, milliseconds.
    pub service_time: Histogram,
    /// Workload units per dispatched batch.
    pub batch_workload: Histogram,
    /// Highest queue depth observed (requests).
    pub max_queue_depth: u64,
    /// Total simulated cluster time across batches.
    pub total_sim_time: SimTime,
    /// Requests re-queued after their batch failed.
    pub retries: u64,
    /// Retried requests that were eventually served.
    pub retried_success: u64,
    /// Faults injected into batches by the chaos plan.
    pub faults_injected: u64,
    /// Supersteps re-executed during rollback-and-replay recovery.
    pub replayed_rounds: u64,
    /// Batch attempts hard-killed for exceeding physical memory.
    pub oom_kills: u64,
    /// Simulated recovery time per faulted batch, milliseconds.
    pub recovery_latency: Histogram,
    /// Wire buckets whose frame checksum caught injected payload
    /// corruption, across all batches.
    pub corrupted_buckets: u64,
    /// Wire buckets repaired by bounded retransmission (no rollback).
    pub retransmitted_buckets: u64,
    /// Bytes re-sent by those retransmissions (simulated traffic).
    pub retransmitted_bytes: Bytes,
    /// Out-of-core spill traffic across all batches (messages plus
    /// paged-out slab state), summed from each batch's
    /// `RunStats::total_spilled_bytes`.
    pub total_spilled_bytes: Bytes,
    /// Partition bytes streamed in by the pager across all batches
    /// (zero when paging is off).
    pub total_loaded_bytes: Bytes,
    /// What the brownout ladder did (`enabled == false` when
    /// [`ServiceConfig::brownout`] was `None`).
    pub brownout: BrownoutReport,
    /// Per-[`SloClass`] breakdown, indexed by [`SloClass::index`].
    pub class: [ClassReport; 3],
    /// Queue depth over time: `(seconds since start, requests)`
    /// sampled by the batch former each scheduling round.
    pub queue_depth_series: TimedSeries,
    /// What the joint controller did (all-zero under the baseline
    /// scheduler, which never consults it).
    pub controller: ControllerStats,
    /// The scheduler this report was produced under.
    pub scheduler: SchedulerPolicy,
}

impl ServiceReport {
    /// Total requests that reached a terminal outcome.
    pub fn requests(&self) -> u64 {
        self.served + self.deadline + self.rejected + self.failed
    }

    /// The report slice for `class`.
    pub fn class(&self, class: SloClass) -> &ClassReport {
        &self.class[class.index()]
    }
}

#[derive(Debug)]
struct MetricsState {
    served: u64,
    deadline: u64,
    rejected: u64,
    failed: u64,
    batches: u64,
    overload_batches: u64,
    overflow_batches: u64,
    retries: u64,
    retried_success: u64,
    faults_injected: u64,
    replayed_rounds: u64,
    oom_kills: u64,
    corrupted_buckets: u64,
    retransmitted_buckets: u64,
    retransmitted_bytes: Bytes,
    total_spilled_bytes: Bytes,
    total_loaded_bytes: Bytes,
    queue_wait: Histogram,
    latency: Histogram,
    service_time: Histogram,
    batch_workload: Histogram,
    recovery_latency: Histogram,
    total_sim_time: SimTime,
    class: [ClassReport; 3],
    depth_series: TimedSeries,
}

impl MetricsState {
    fn new() -> MetricsState {
        MetricsState {
            served: 0,
            deadline: 0,
            rejected: 0,
            failed: 0,
            batches: 0,
            overload_batches: 0,
            overflow_batches: 0,
            retries: 0,
            retried_success: 0,
            faults_injected: 0,
            replayed_rounds: 0,
            oom_kills: 0,
            corrupted_buckets: 0,
            retransmitted_buckets: 0,
            retransmitted_bytes: Bytes::ZERO,
            total_spilled_bytes: Bytes::ZERO,
            total_loaded_bytes: Bytes::ZERO,
            queue_wait: Histogram::new(),
            latency: Histogram::new(),
            service_time: Histogram::new(),
            batch_workload: Histogram::new(),
            recovery_latency: Histogram::new(),
            total_sim_time: SimTime::ZERO,
            class: Default::default(),
            depth_series: TimedSeries::new("queue_depth"),
        }
    }
}

struct Shared {
    queue: DrrQueue,
    admission: Mutex<AdmissionController>,
    /// Signalled by workers whenever a completion frees headroom.
    headroom: Condvar,
    pending: Mutex<HashMap<RequestId, Arc<Slot>>>,
    metrics: Mutex<MetricsState>,
    shapes: Vec<Task>,
    /// One online latency model per shape (parallel to `shapes`):
    /// workers feed observed batch wall latencies in; the SLO
    /// scheduler inverts the fit to size deadline-constrained batches.
    latency_models: Vec<Mutex<OnlineLatencyModel>>,
    /// Joint controller + its stats (the former is the only caller;
    /// the lock exists so `shutdown` can read the stats).
    controller: Mutex<JointController>,
    scheduler: SchedulerPolicy,
    /// Brownout subsystem (health tracker + circuit breaker + ladder):
    /// workers feed batch health in, the former steps the ladder each
    /// iteration. `None` when brownouts are not configured.
    brownout: Option<Mutex<BrownoutState>>,
    /// Epoch for the queue-depth time series.
    started: Instant,
}

impl Shared {
    fn latency_model_for(&self, shape: &Task) -> Option<&Mutex<OnlineLatencyModel>> {
        self.shapes
            .iter()
            .position(|s| same_shape(s, shape))
            .map(|i| &self.latency_models[i])
    }
}

/// Per-worker execution knobs, cloned into every worker thread.
#[derive(Clone)]
struct WorkerCfg {
    seed: u64,
    policy: RecoveryPolicy,
    retry_budget: u32,
    backoff: Duration,
    backoff_cap: Duration,
}

/// A batch formed by the scheduler, in flight to a worker.
struct FormedBatch {
    id: u64,
    shape: Task,
    workload: u64,
    requests: Vec<QueuedRequest>,
    /// Per-machine residual snapshot the batch starts against.
    residual: Vec<u64>,
    dispatched: Instant,
    /// Per-batch engine parallel-cutover override chosen by the joint
    /// controller (`None` under the baseline scheduler).
    parallel_threshold: Option<usize>,
}

/// The running service. Dropping it shuts down without a report;
/// prefer [`TaskService::shutdown`].
pub struct TaskService {
    shared: Arc<Shared>,
    next_id: AtomicU64,
    former: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TaskService {
    /// Train the memory model for every shape, fit it, and spawn the
    /// former and worker threads. Training cost is the §5 "minor"
    /// probe cost, paid once here.
    pub fn start(graph: Arc<Graph>, cfg: ServiceConfig) -> Result<TaskService, StartError> {
        if cfg.shapes.is_empty() {
            return Err(StartError::NoShapes);
        }
        let mut admission = AdmissionController::new(&cfg.cluster, cfg.overload_p, cfg.flush_every);
        let mut runners: Vec<(Task, Arc<BatchRunner>)> = Vec::new();
        for (i, &shape) in cfg.shapes.iter().enumerate() {
            if admission.supports(&shape) {
                continue; // duplicate shape in the config
            }
            let probe_task = shape.with_workload(cfg.training_workload);
            let data = train(
                &graph,
                probe_task,
                cfg.system,
                &cfg.cluster,
                cfg.seed ^ mix64(i as u64 + 1),
            );
            let model = OnlineMemoryModel::fit(&data, cfg.seed)
                .map_err(|source| StartError::Fit { shape, source })?;
            admission.register(shape, model);
            let mut runner =
                BatchRunner::new(graph.clone(), shape, cfg.system, cfg.cluster.clone())
                    .with_checkpoint_every(cfg.checkpoint_every);
            if let Some(t) = cfg.parallel_vertex_threshold {
                runner = runner.with_parallel_threshold(t);
            }
            if let Some(plan) = &cfg.chaos {
                runner = runner.with_faults(plan.clone());
            }
            runners.push((shape, Arc::new(runner)));
        }

        let queue_policy = match cfg.scheduler {
            SchedulerPolicy::BaselineDrr => QueuePolicy::default(),
            SchedulerPolicy::SloAware => QueuePolicy::slo_aware(),
        };
        let shapes: Vec<Task> = cfg.shapes.iter().map(|s| s.with_workload(1)).collect();
        let latency_models = shapes
            .iter()
            .map(|_| Mutex::new(OnlineLatencyModel::new()))
            .collect();
        let shared = Arc::new(Shared {
            queue: DrrQueue::new(cfg.queue_capacity, cfg.quantum).with_policy(queue_policy),
            admission: Mutex::new(admission),
            headroom: Condvar::new(),
            pending: Mutex::new(HashMap::new()),
            metrics: Mutex::new(MetricsState::new()),
            shapes,
            latency_models,
            controller: Mutex::new(JointController::new(ControllerCfg::new(cfg.workers))),
            scheduler: cfg.scheduler,
            brownout: cfg
                .brownout
                .map(|b| Mutex::new(BrownoutState::new(b, cfg.workers))),
            started: Instant::now(),
        });

        let wcfg = WorkerCfg {
            seed: cfg.seed,
            policy: RecoveryPolicy {
                max_depth: cfg.ladder_depth,
            },
            retry_budget: cfg.retry_budget,
            backoff: cfg.retry_backoff,
            backoff_cap: cfg.retry_backoff_cap,
        };
        let (tx, rx) = crossbeam::channel::bounded::<FormedBatch>(cfg.workers);
        let mut workers = Vec::with_capacity(cfg.workers);
        for worker in 0..cfg.workers {
            let rx = rx.clone();
            let shared = shared.clone();
            let runners = runners.clone();
            let wcfg = wcfg.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(&shared, &runners, &wcfg, rx, worker)
            }));
        }
        drop(rx);

        let former = {
            let shared = shared.clone();
            let max_batch = cfg.max_batch;
            std::thread::spawn(move || former_loop(&shared, max_batch, tx))
        };

        Ok(TaskService {
            shared,
            next_id: AtomicU64::new(0),
            former: Some(former),
            workers,
        })
    }

    /// Submit a request, blocking while the queue is at capacity
    /// (backpressure). Returns a [`Ticket`] resolving to the
    /// completion.
    pub fn submit(&self, request: TaskRequest) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, true)
    }

    /// Submit without blocking; fails with [`SubmitError::Full`] when
    /// the queue is at capacity.
    pub fn try_submit(&self, request: TaskRequest) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, false)
    }

    fn submit_inner(&self, request: TaskRequest, block: bool) -> Result<Ticket, SubmitError> {
        if request.workload() == 0 {
            return Err(SubmitError::Empty);
        }
        if !self
            .shared
            .shapes
            .iter()
            .any(|s| same_shape(s, &request.task))
        {
            return Err(AdmissionError::UnregisteredShape(request.task.with_workload(1)).into());
        }
        let id = RequestId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let slot = Arc::new(Slot::default());
        self.shared.pending.lock().unwrap().insert(id, slot.clone());
        let queued = QueuedRequest {
            id,
            request,
            submitted: Instant::now(),
            attempts: 0,
        };
        let res = if block {
            self.shared.queue.submit_blocking(queued)
        } else {
            self.shared.queue.try_submit(queued)
        };
        match res {
            Ok(()) => Ok(Ticket { id, slot }),
            Err(e) => {
                self.shared.pending.lock().unwrap().remove(&id);
                Err(e)
            }
        }
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Largest workload a `shape` batch could carry right now, given
    /// current residual and in-flight reservations. Errs typed when no
    /// model is registered for the shape.
    pub fn admissible_now(&self, shape: &Task) -> Result<u64, AdmissionError> {
        self.shared.admission.lock().unwrap().max_admissible(shape)
    }

    /// Largest workload a `shape` batch could ever carry (idle, flushed
    /// cluster) — requests above this are rejected outright. Errs typed
    /// when no model is registered for the shape.
    pub fn admissible_max(&self, shape: &Task) -> Result<u64, AdmissionError> {
        self.shared.admission.lock().unwrap().max_possible(shape)
    }

    /// Live queue-depth gauge (with high-water mark).
    pub fn queue_depth(&self) -> mtvc_metrics::Gauge {
        self.shared.queue.depth()
    }

    /// Stop accepting requests, drain everything queued and in flight,
    /// join all threads, and return the final report.
    pub fn shutdown(mut self) -> ServiceReport {
        self.stop();
        let m = self.shared.metrics.lock().unwrap();
        let ac = self.shared.admission.lock().unwrap();
        ServiceReport {
            served: m.served,
            deadline: m.deadline,
            rejected: m.rejected,
            failed: m.failed,
            batches: m.batches,
            flushes: ac.flushes(),
            refits: ac.refits(),
            overload_batches: m.overload_batches,
            overflow_batches: m.overflow_batches,
            queue_wait: m.queue_wait.clone(),
            latency: m.latency.clone(),
            service_time: m.service_time.clone(),
            batch_workload: m.batch_workload.clone(),
            max_queue_depth: self.shared.queue.depth().high_water(),
            total_sim_time: m.total_sim_time,
            retries: m.retries,
            retried_success: m.retried_success,
            faults_injected: m.faults_injected,
            replayed_rounds: m.replayed_rounds,
            oom_kills: m.oom_kills,
            recovery_latency: m.recovery_latency.clone(),
            corrupted_buckets: m.corrupted_buckets,
            retransmitted_buckets: m.retransmitted_buckets,
            retransmitted_bytes: m.retransmitted_bytes,
            total_spilled_bytes: m.total_spilled_bytes,
            total_loaded_bytes: m.total_loaded_bytes,
            brownout: self
                .shared
                .brownout
                .as_ref()
                .map(|b| b.lock().unwrap().report())
                .unwrap_or_default(),
            class: m.class.clone(),
            queue_depth_series: m.depth_series.clone(),
            controller: self.shared.controller.lock().unwrap().stats(),
            scheduler: self.shared.scheduler,
        }
    }

    fn stop(&mut self) {
        self.shared.queue.close();
        if let Some(former) = self.former.take() {
            let _ = former.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for TaskService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Publish a terminal outcome for one request.
fn finish(
    shared: &Shared,
    req: QueuedRequest,
    outcome: RequestOutcome,
    dispatched: Option<Instant>,
) {
    let now = Instant::now();
    let queue_wait = dispatched.unwrap_or(now).duration_since(req.submitted);
    let latency = now.duration_since(req.submitted);
    let class = req.request.class;
    {
        let mut m = shared.metrics.lock().unwrap();
        let c = &mut m.class[class.index()];
        match &outcome {
            RequestOutcome::Served { .. } => {
                c.served += 1;
                if req.request.deadline.is_some() {
                    c.deadline_met += 1;
                }
            }
            RequestOutcome::Deadline => {
                c.deadline += 1;
                if dispatched.is_none() {
                    // Never dispatched: the deadline passed in-queue.
                    c.expired_in_queue += 1;
                }
            }
            RequestOutcome::Rejected => c.rejected += 1,
            RequestOutcome::Failed { .. } => c.failed += 1,
        }
        c.latency.record(latency.as_micros() as u64);
        c.queue_wait.record(queue_wait.as_micros() as u64);
        match &outcome {
            RequestOutcome::Served { .. } => {
                m.served += 1;
                if req.attempts > 0 {
                    m.retried_success += 1;
                }
            }
            RequestOutcome::Deadline => m.deadline += 1,
            RequestOutcome::Rejected => m.rejected += 1,
            RequestOutcome::Failed { .. } => m.failed += 1,
        }
        m.queue_wait.record(queue_wait.as_micros() as u64);
        m.latency.record(latency.as_micros() as u64);
    }
    let completion = Completion {
        id: req.id,
        tenant: req.request.tenant,
        class,
        outcome,
        queue_wait,
        latency,
        attempts: req.attempts,
    };
    let slot = shared.pending.lock().unwrap().remove(&req.id);
    if let Some(slot) = slot {
        *slot.done.lock().unwrap() = Some(completion);
        slot.cv.notify_all();
    }
}

/// How long the former waits for worker completions before rechecking
/// headroom (a safety valve; the headroom condvar is the fast path).
const HEADROOM_POLL: Duration = Duration::from_millis(20);

fn former_loop(shared: &Shared, max_batch: u64, tx: crossbeam::channel::Sender<FormedBatch>) {
    let mut last_depth = usize::MAX;
    while let Some(shape) = shared.queue.next_shape_blocking() {
        // Step the brownout ladder once per scheduling iteration. A
        // closed queue is draining towards shutdown: the mask is
        // lifted so deferred classes always leave, never hang.
        let decision = match &shared.brownout {
            Some(b) if !shared.queue.is_closed() => b.lock().unwrap().former_tick(),
            _ => BrownoutDecision::normal(),
        };
        let depth = shared.queue.len();
        if depth != last_depth {
            last_depth = depth;
            let t = shared.started.elapsed().as_secs_f64();
            shared
                .metrics
                .lock()
                .unwrap()
                .depth_series
                .push(t, depth as f64);
        }
        let w_max = {
            let ac = shared.admission.lock().unwrap();
            match ac.max_admissible(&shape) {
                Ok(w) => w.min(max_batch),
                Err(_) => {
                    // No model for this shape (submit gates on the
                    // registered set, so only a config bug reaches
                    // here): drain the head typed instead of panicking.
                    drop(ac);
                    if let Some(req) = shared.queue.pop_head(&shape) {
                        finish(shared, req, RequestOutcome::Rejected, None);
                    }
                    continue;
                }
            }
        };
        if w_max >= 1 {
            let now = Instant::now();
            // The joint controller may size the batch below the full
            // headroom (and pick its parallel cutover); the cap is
            // raised back to the head's workload so a head wider than
            // the cap cannot wedge the former.
            let (budget, parallel_threshold) = match shared.scheduler {
                SchedulerPolicy::BaselineDrr => (w_max, None),
                SchedulerPolicy::SloAware => {
                    let head_slack = shared.queue.head_slack(&shape, now);
                    let head_w = shared.queue.head_workload(&shape).unwrap_or(1);
                    let decision = {
                        let model = shared
                            .latency_model_for(&shape)
                            .expect("admissible shape has a latency model")
                            .lock()
                            .unwrap();
                        shared
                            .controller
                            .lock()
                            .unwrap()
                            .decide(depth, w_max, head_slack, &model)
                    };
                    (
                        decision.batch_cap.max(head_w.min(w_max)),
                        decision.parallel_threshold,
                    )
                }
            };
            // The brownout rung caps the budget (NarrowCaps) and masks
            // shed classes out of the take.
            let budget = decision.cap(budget);
            let round = shared
                .queue
                .take_batch_classes(&shape, budget, now, decision.allowed);
            if !round.expired.is_empty() {
                let mut m = shared.metrics.lock().unwrap();
                for exp in &round.expired {
                    m.class[exp.request.request.class.index()]
                        .expired_wait
                        .record(exp.time_in_queue.as_micros() as u64);
                }
            }
            for exp in round.expired {
                finish(shared, exp.request, RequestOutcome::Deadline, None);
            }
            if !round.taken.is_empty() {
                let workload: u64 = round.taken.iter().map(|r| r.workload()).sum();
                let reserved = {
                    let mut ac = shared.admission.lock().unwrap();
                    ac.reserve(&shape, workload)
                };
                let Ok((id, residual)) = reserved else {
                    for req in round.taken {
                        finish(shared, req, RequestOutcome::Rejected, None);
                    }
                    continue;
                };
                let batch = FormedBatch {
                    id,
                    shape,
                    workload,
                    requests: round.taken,
                    residual,
                    dispatched: Instant::now(),
                    parallel_threshold,
                };
                // Bounded channel: backpressure when every worker is
                // busy. The wait is chunked so the brownout ladder
                // keeps ticking — a blocking send would freeze the
                // control loop for the whole length of a slow batch,
                // exactly when the ladder most needs to move.
                let mut batch = batch;
                loop {
                    use crossbeam::channel::SendTimeoutError;
                    match tx.send_timeout(batch, HEADROOM_POLL) {
                        Ok(()) => break,
                        Err(SendTimeoutError::Timeout(b)) => {
                            batch = b;
                            if let Some(br) = &shared.brownout {
                                if !shared.queue.is_closed() {
                                    let _ = br.lock().unwrap().former_tick();
                                }
                            }
                        }
                        Err(SendTimeoutError::Disconnected(_)) => {
                            return; // workers are gone; shutting down
                        }
                    }
                }
                continue;
            }
        }
        // Nothing was taken: the ring head does not fit the current
        // headroom (or the budget is zero).
        let Some(w_head) = shared.queue.head_workload(&shape) else {
            continue; // head expired away or shape rotated; re-peek
        };
        if let Some(class) = shared.queue.head_class(&shape) {
            if !decision.admits(class) {
                // The head is deferred by the brownout ladder, not by
                // headroom. Park briefly: worker completions and idle
                // ticks walk the ladder back down, and shutdown lifts
                // the mask.
                let ac = shared.admission.lock().unwrap();
                let _ = shared.headroom.wait_timeout(ac, HEADROOM_POLL);
                continue;
            }
        }
        let mut ac = shared.admission.lock().unwrap();
        if w_head > ac.max_possible(&shape).unwrap_or(0).min(max_batch) {
            // Cannot fit even an idle, flushed cluster: reject.
            drop(ac);
            if let Some(req) = shared.queue.pop_head(&shape) {
                finish(shared, req, RequestOutcome::Rejected, None);
            }
            continue;
        }
        if w_head <= w_max {
            // Fits the headroom; the DRR deficit just has not built up
            // yet. Loop again — every round banks another quantum.
            continue;
        }
        if ac.has_inflight() {
            // Wait for a worker to free headroom.
            let _ = shared.headroom.wait_timeout(ac, HEADROOM_POLL);
            continue;
        }
        if ac.has_residual() {
            // Idle cluster blocked only by unshipped results: close the
            // flush epoch early and re-check.
            ac.flush();
            continue;
        }
        // No in-flight work, no residual, yet w_head > w_max: the
        // model's idle admission equals max_possible, so this is
        // unreachable; guard against a pathological fit by rejecting.
        drop(ac);
        if let Some(req) = shared.queue.pop_head(&shape) {
            finish(shared, req, RequestOutcome::Rejected, None);
        }
    }
}

fn worker_loop(
    shared: &Shared,
    runners: &[(Task, Arc<BatchRunner>)],
    wcfg: &WorkerCfg,
    rx: crossbeam::channel::Receiver<FormedBatch>,
    worker: usize,
) {
    while let Ok(batch) = rx.recv() {
        let Some(runner) = runners
            .iter()
            .find(|(s, _)| same_shape(s, &batch.shape))
            .map(|(_, r)| r)
        else {
            // No runner for this shape (only a config bug reaches
            // here): release the reservation and fail the requests
            // typed instead of panicking the worker.
            shared.admission.lock().unwrap().abort(batch.id);
            shared.headroom.notify_all();
            for req in batch.requests {
                finish(
                    shared,
                    req,
                    RequestOutcome::Failed {
                        reason: "unregistered shape",
                    },
                    Some(batch.dispatched),
                );
            }
            continue;
        };
        let batch_seed = wcfg.seed ^ mix64(batch.id.wrapping_add(0xB42C));
        let sources = match batch.shape {
            Task::Bppr { .. } => Vec::new(),
            Task::Mssp { .. } | Task::Bkhs { .. } => {
                select_sources(runner.graph(), batch.workload, batch_seed)
            }
        };
        let run_started = Instant::now();
        let exec = runner.run_batch_bisecting_at(
            batch.workload,
            &sources,
            &batch.residual,
            batch_seed,
            OVERLOAD_CUTOFF,
            &wcfg.policy,
            batch.parallel_threshold,
        );
        let completed_time = match exec.outcome {
            RunOutcome::Completed(t) => Some(t),
            _ => None,
        };
        // Feed the observed wall latency back as a refit point: the
        // SLO scheduler inverts this model to size deadline-bound
        // batches against real (not simulated) execution cost.
        if completed_time.is_some() {
            if let Some(model) = shared.latency_model_for(&batch.shape) {
                model
                    .lock()
                    .unwrap()
                    .observe(batch.workload, run_started.elapsed().as_secs_f64());
            }
        }
        {
            let mut ac = shared.admission.lock().unwrap();
            // OOM-killed attempts are censored observations: the model
            // learns the kill's demand as a lower bound on the peak.
            for &(w, bound) in &exec.censored {
                ac.record_censored(&batch.shape, w, bound);
            }
            ac.complete(
                batch.id,
                &batch.shape,
                batch.workload,
                completed_time.map(|_| exec.peak_memory.as_f64()),
                &batch.residual,
                &exec.residual_delta,
            );
        }
        shared.headroom.notify_all();
        {
            let mut m = shared.metrics.lock().unwrap();
            m.batches += 1;
            m.batch_workload.record(batch.workload);
            m.total_sim_time += exec.time;
            m.service_time
                .record((exec.time.as_secs() * 1e3).round() as u64);
            let f = &exec.stats.faults;
            m.faults_injected += f.injected;
            m.replayed_rounds += f.replayed_rounds;
            m.oom_kills += f.oom_kills;
            m.corrupted_buckets += f.corrupted_buckets;
            m.retransmitted_buckets += f.retransmitted_buckets;
            m.retransmitted_bytes += f.retransmitted_bytes;
            m.total_spilled_bytes += exec.stats.total_spilled_bytes;
            m.total_loaded_bytes += exec.stats.total_loaded_bytes;
            if f.injected > 0 {
                m.recovery_latency
                    .record((f.recovery_time.as_secs() * 1e3).round() as u64);
            }
            match exec.outcome {
                RunOutcome::Completed(_) => {}
                RunOutcome::Overload => m.overload_batches += 1,
                RunOutcome::Overflow => m.overflow_batches += 1,
            }
        }
        if let Some(b) = &shared.brownout {
            // Grade the batch for the health tracker: a terminal
            // failure is fully bad; otherwise badness grows with the
            // fault events survived (1 event → 0.5, asymptote 1).
            let f = &exec.stats.faults;
            let events = f.injected + f.oom_kills;
            let failed = completed_time.is_none();
            let badness = if failed {
                1.0
            } else {
                events as f64 / (events as f64 + 1.0)
            };
            b.lock()
                .unwrap()
                .observe_batch(worker, badness, failed || events > 0);
        }
        match completed_time {
            Some(t) => {
                for req in batch.requests {
                    finish(
                        shared,
                        req,
                        RequestOutcome::Served { batch_time: t },
                        Some(batch.dispatched),
                    );
                }
            }
            None => {
                let reason = match exec.outcome {
                    RunOutcome::Overload => "overload",
                    _ => "overflow",
                };
                retry_or_fail(shared, batch.requests, reason, batch.dispatched, wcfg);
            }
        }
    }
}

/// Settle every request of a failed batch: re-queue it (with
/// exponential backoff and deterministic jitter) while the retry budget
/// and its deadline allow, otherwise publish the typed terminal
/// outcome.
fn retry_or_fail(
    shared: &Shared,
    requests: Vec<QueuedRequest>,
    reason: &'static str,
    dispatched: Instant,
    wcfg: &WorkerCfg,
) {
    for mut req in requests {
        if req.attempts >= wcfg.retry_budget {
            finish(
                shared,
                req,
                RequestOutcome::Failed { reason },
                Some(dispatched),
            );
            continue;
        }
        if req.expired(Instant::now()) {
            // The deadline passed while the batch was failing; no
            // retry can land in time.
            finish(shared, req, RequestOutcome::Deadline, Some(dispatched));
            continue;
        }
        // base · 2^attempt, jittered by up to one base, capped. The
        // jitter is deterministic in (request, attempt) so runs stay
        // reproducible.
        let base = wcfg
            .backoff
            .saturating_mul(1u32 << req.attempts.min(16))
            .min(wcfg.backoff_cap);
        let jitter_ns = mix64(req.id.0 ^ ((u64::from(req.attempts) + 1) << 48))
            % wcfg.backoff.as_nanos().max(1) as u64;
        let delay = (base + Duration::from_nanos(jitter_ns)).min(wcfg.backoff_cap);
        std::thread::sleep(delay);
        req.attempts += 1;
        match shared.queue.try_submit(req.clone()) {
            Ok(()) => {
                shared.metrics.lock().unwrap().retries += 1;
            }
            // Queue closed (shutdown) or full: the retry cannot be
            // parked anywhere, so the failure becomes terminal.
            Err(_) => finish(
                shared,
                req,
                RequestOutcome::Failed { reason },
                Some(dispatched),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TenantId;
    use mtvc_graph::generators;

    fn small_service(shapes: &[Task]) -> TaskService {
        let graph = Arc::new(generators::power_law(300, 1400, 2.4, 11));
        let mut cfg = ServiceConfig::new(SystemKind::PregelPlus, ClusterSpec::galaxy(4))
            .with_workers(2)
            .with_quantum(16)
            .with_seed(0xC0FFEE);
        cfg.training_workload = 64;
        for &s in shapes {
            cfg = cfg.with_shape(s);
        }
        TaskService::start(graph, cfg).expect("service starts")
    }

    #[test]
    fn serves_a_mixed_stream_to_completion() {
        let svc = small_service(&[Task::mssp(1), Task::bppr(1)]);
        let mut tickets = Vec::new();
        for i in 0..20u64 {
            let tenant = TenantId((i % 3) as u32);
            let task = if i % 2 == 0 {
                Task::mssp(2)
            } else {
                Task::bppr(4)
            };
            tickets.push(svc.submit(TaskRequest::new(tenant, task)).unwrap());
        }
        for t in &tickets {
            let c = t.wait();
            assert!(c.outcome.is_served(), "{:?}", c.outcome);
            assert!(c.latency >= c.queue_wait);
        }
        let report = svc.shutdown();
        assert_eq!(report.served, 20);
        assert_eq!(report.requests(), 20);
        assert_eq!(report.overload_batches, 0);
        assert_eq!(report.overflow_batches, 0);
        assert!(report.batches >= 1);
        assert_eq!(report.latency.count(), 20);
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let svc = small_service(&[Task::mssp(1)]);
        let tickets: Vec<Ticket> = (0..10)
            .map(|i| {
                svc.submit(TaskRequest::new(TenantId(i % 2), Task::mssp(1)))
                    .unwrap()
            })
            .collect();
        let report = svc.shutdown();
        assert_eq!(report.served, 10);
        for t in tickets {
            assert!(t.try_get().is_some());
        }
    }

    #[test]
    fn unsupported_shape_is_refused_at_submit() {
        let svc = small_service(&[Task::mssp(1)]);
        let err = svc
            .submit(TaskRequest::new(TenantId(0), Task::bkhs(1)))
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::Admission(AdmissionError::UnregisteredShape(Task::bkhs(1)))
        );
        assert!(svc.admissible_max(&Task::bkhs(1)).is_err());
        svc.shutdown();
    }

    #[test]
    fn oversized_request_is_rejected_not_hung() {
        let svc = small_service(&[Task::bppr(1)]);
        // A single request far beyond any admissible batch.
        let t = svc
            .submit(TaskRequest::new(TenantId(0), Task::bppr(u64::MAX / 2)))
            .unwrap();
        let c = t.wait();
        assert_eq!(c.outcome, RequestOutcome::Rejected);
        let report = svc.shutdown();
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn submissions_after_shutdown_fail_closed() {
        let svc = small_service(&[Task::mssp(1)]);
        svc.shared.queue.close();
        let err = svc
            .submit(TaskRequest::new(TenantId(0), Task::mssp(1)))
            .unwrap_err();
        assert_eq!(err, SubmitError::Closed);
        svc.shutdown();
    }

    #[test]
    fn expired_requests_report_deadline() {
        let svc = small_service(&[Task::mssp(1)]);
        // Deadline already passed relative to a backdated submission.
        let t = svc
            .submit(
                TaskRequest::new(TenantId(0), Task::mssp(1)).with_deadline(Duration::from_nanos(1)),
            )
            .unwrap();
        let c = t.wait();
        // Either it expired in the queue, or the former dispatched it
        // before the deadline check saw it — both are terminal.
        assert!(matches!(
            c.outcome,
            RequestOutcome::Deadline | RequestOutcome::Served { .. }
        ));
        svc.shutdown();
    }

    /// Satellite (c): shutdown under injected worker-batch faults must
    /// still resolve every ticket — recoverable crashes and delivery
    /// failures replay from checkpoints and the drain leaves nothing
    /// hung on [`Ticket::wait`].
    #[test]
    fn shutdown_drains_every_ticket_under_injected_faults() {
        let graph = Arc::new(generators::grid(12, 12));
        let mut cfg = ServiceConfig::new(SystemKind::PregelPlus, ClusterSpec::galaxy(4))
            .with_workers(2)
            .with_quantum(16)
            .with_seed(0xFA117)
            .with_checkpoint_every(2)
            // Off-cadence fault rounds: a crash at a checkpoint round
            // restores to itself and replays nothing.
            .with_chaos(
                FaultPlan::none()
                    .with_crash(3, 1)
                    .with_delivery_failure(5, 0),
            );
        cfg.training_workload = 64;
        cfg = cfg.with_shape(Task::mssp(1)).with_shape(Task::bppr(1));
        let svc = TaskService::start(graph, cfg).expect("service starts");
        let tickets: Vec<Ticket> = (0..16u32)
            .map(|i| {
                let task = if i % 2 == 0 {
                    Task::mssp(2)
                } else {
                    Task::bppr(4)
                };
                svc.submit(TaskRequest::new(TenantId(i % 3), task)).unwrap()
            })
            .collect();
        let report = svc.shutdown();
        for t in &tickets {
            let c = t.try_get().expect("ticket left unresolved after drain");
            assert!(c.outcome.is_served(), "{:?}", c.outcome);
        }
        assert_eq!(report.requests(), 16);
        assert_eq!(
            report.served, 16,
            "recoverable faults must not fail requests"
        );
        assert!(report.faults_injected > 0, "chaos plan never fired");
        assert!(report.replayed_rounds > 0, "no rollback-replay happened");
        assert!(report.recovery_latency.count() > 0);
        assert_eq!(report.failed, 0);
    }

    /// The retry ladder: a request from a failed batch is re-queued
    /// with its attempt count bumped while budget and deadline allow,
    /// and fails typed (never panics, never hangs) otherwise.
    #[test]
    fn failed_requests_retry_until_budget_exhausts() {
        let shared = Shared {
            queue: DrrQueue::new(8, 8),
            admission: Mutex::new(AdmissionController::new(&ClusterSpec::galaxy(2), 0.85, 4)),
            headroom: Condvar::new(),
            pending: Mutex::new(HashMap::new()),
            metrics: Mutex::new(MetricsState::new()),
            shapes: vec![Task::mssp(1)],
            latency_models: vec![Mutex::new(OnlineLatencyModel::new())],
            controller: Mutex::new(JointController::new(ControllerCfg::new(2))),
            scheduler: SchedulerPolicy::BaselineDrr,
            brownout: None,
            started: Instant::now(),
        };
        let wcfg = WorkerCfg {
            seed: 1,
            policy: RecoveryPolicy::default(),
            retry_budget: 2,
            backoff: Duration::from_micros(10),
            backoff_cap: Duration::from_micros(50),
        };
        let req = |attempts: u32| QueuedRequest {
            id: RequestId(1),
            request: TaskRequest::new(TenantId(0), Task::mssp(1)),
            submitted: Instant::now(),
            attempts,
        };
        // Under budget: re-queued with the attempt consumed.
        retry_or_fail(&shared, vec![req(0)], "overflow", Instant::now(), &wcfg);
        assert_eq!(shared.queue.len(), 1);
        assert_eq!(shared.metrics.lock().unwrap().retries, 1);
        let requeued = shared.queue.pop_head(&Task::mssp(1)).unwrap();
        assert_eq!(requeued.attempts, 1);
        // Budget exhausted: terminal typed failure.
        retry_or_fail(&shared, vec![req(2)], "overflow", Instant::now(), &wcfg);
        assert_eq!(shared.metrics.lock().unwrap().failed, 1);
        assert!(shared.queue.is_empty());
        // Deadline already passed: Deadline, not Failed.
        let mut stale = req(0);
        stale.request.deadline = Some(Duration::from_nanos(1));
        stale.submitted = Instant::now() - Duration::from_millis(5);
        retry_or_fail(&shared, vec![stale], "overflow", Instant::now(), &wcfg);
        assert_eq!(shared.metrics.lock().unwrap().deadline, 1);
        // Closed queue (shutdown): the retry has nowhere to park.
        shared.queue.close();
        retry_or_fail(&shared, vec![req(0)], "overload", Instant::now(), &wcfg);
        assert_eq!(shared.metrics.lock().unwrap().failed, 2);
    }

    /// The brownout ladder under sustained chaos: every batch carries
    /// injected faults, so the breaker trips, the ladder climbs and
    /// defers Batch-class traffic — yet *every* request is still
    /// served (shedding is deferral; shutdown lifts the mask and
    /// drains), and the corruption/retransmission counters surface in
    /// the report.
    #[test]
    fn brownout_ladder_sheds_under_chaos_and_still_drains() {
        use crate::health::BrownoutCfg;
        let run = |brownout: bool| {
            let graph = Arc::new(generators::grid(12, 12));
            let mut cfg = ServiceConfig::new(SystemKind::PregelPlus, ClusterSpec::galaxy(4))
                .with_workers(1)
                // Quantum 1 with unit requests: many small batches, so
                // the former keeps iterating (and ticking the ladder)
                // long after the first faulted batch reports in.
                .with_quantum(1)
                .with_seed(0xB40)
                .with_checkpoint_every(2)
                // Off-cadence rounds; corruption exercises the frame
                // checksum + retransmission path end to end.
                .with_chaos(FaultPlan::none().with_crash(3, 1).with_corruption(5, 0, 2));
            if brownout {
                cfg = cfg.with_brownout(BrownoutCfg {
                    min_dwell: 1,
                    breaker_threshold: 1,
                    breaker_cooldown: 2,
                    enter_score: 0.3,
                    exit_score: 0.1,
                    // Fast idle recovery so a fully-shed ladder cannot
                    // stall the run for long.
                    idle_decay: 0.5,
                    ..BrownoutCfg::default()
                });
            }
            cfg.training_workload = 64;
            cfg = cfg.with_shape(Task::mssp(1));
            let svc = TaskService::start(graph, cfg).expect("service starts");
            // One tenant lane per class, so shedding Batch defers only
            // tenant 2's lane while the others keep the former busy.
            let tickets: Vec<Ticket> = (0..24u32)
                .map(|i| {
                    let class = match i % 3 {
                        0 => SloClass::Interactive,
                        1 => SloClass::Standard,
                        _ => SloClass::Batch,
                    };
                    svc.submit(TaskRequest::new(TenantId(i % 3), Task::mssp(1)).with_class(class))
                        .unwrap()
                })
                .collect();
            // Wait for every ticket while the service is *live* — the
            // ladder only sheds on an open queue (shutdown lifts the
            // mask to drain), so deferred Batch requests resolving
            // here proves deferral ends in service, not loss.
            for t in &tickets {
                let c = t.wait();
                assert!(c.outcome.is_served(), "{:?}", c.outcome);
            }
            svc.shutdown()
        };
        let plain = run(false);
        assert!(!plain.brownout.enabled);
        assert_eq!(plain.brownout.transitions, 0);
        let browned = run(true);
        assert_eq!(browned.served, 24, "shedding must defer, not drop");
        assert_eq!(browned.failed, 0);
        assert!(browned.faults_injected > 0, "chaos plan never fired");
        assert!(
            browned.corrupted_buckets > 0,
            "corruption events must surface in the report"
        );
        assert_eq!(
            browned.corrupted_buckets, browned.retransmitted_buckets,
            "every corrupted bucket is retransmitted exactly once"
        );
        assert!(browned.retransmitted_bytes.get() > 0);
        let b = &browned.brownout;
        assert!(b.enabled);
        assert!(
            b.breaker_opens >= 1,
            "faulted batches must trip the breaker"
        );
        assert!(b.transitions >= 1, "the ladder never climbed");
        assert!(b.shed_iterations >= 1, "no iteration ran degraded");
        assert!(b.deepest_level >= 1);
    }

    /// Chaos does not change outcomes: a stream served under injected
    /// crashes completes every request exactly as a fault-free one
    /// does (batch-level bit-identity is proven by the engine's chaos
    /// proptest; here the claim is the service level never degrades an
    /// outcome). Replay traffic is visible only in the fault counters.
    #[test]
    fn chaos_stream_serves_everything_fault_free_does() {
        let run = |chaos: Option<FaultPlan>| {
            let graph = Arc::new(generators::grid(10, 10));
            let mut cfg = ServiceConfig::new(SystemKind::PregelPlus, ClusterSpec::galaxy(4))
                .with_workers(1)
                .with_quantum(16)
                .with_seed(0xD15EA5E)
                .with_checkpoint_every(3);
            cfg.training_workload = 64;
            cfg = cfg.with_shape(Task::mssp(1));
            if let Some(plan) = chaos {
                cfg = cfg.with_chaos(plan);
            }
            let svc = TaskService::start(graph, cfg).expect("service starts");
            let tickets: Vec<Ticket> = (0..8)
                .map(|i| {
                    svc.submit(TaskRequest::new(TenantId(i % 2), Task::mssp(2)))
                        .unwrap()
                })
                .collect();
            for t in &tickets {
                assert!(t.wait().outcome.is_served());
            }
            svc.shutdown()
        };
        let clean = run(None);
        let chaos = run(Some(FaultPlan::none().with_crash(1, 0).with_crash(3, 2)));
        assert_eq!(clean.served, 8);
        assert_eq!(chaos.served, 8);
        assert_eq!(chaos.failed, 0);
        assert!(chaos.faults_injected > 0, "chaos plan never fired");
        assert_eq!(clean.faults_injected, 0);
        assert!(chaos.replayed_rounds > clean.replayed_rounds);
    }
}
