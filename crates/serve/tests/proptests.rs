//! Property tests for the multi-tenant DRR queue: conservation under
//! concurrent submit/drain, the deficit round-robin fairness bound, and
//! backpressure at capacity.

use mtvc_core::Task;
use mtvc_serve::{DrrQueue, QueuedRequest, RequestId, SubmitError, TaskRequest, TenantId};
use proptest::prelude::*;
use std::thread;
use std::time::Instant;

fn unit_request(id: u64, tenant: u32, workload: u64) -> QueuedRequest {
    QueuedRequest {
        id: RequestId(id),
        request: TaskRequest::new(TenantId(tenant), Task::mssp(workload)),
        submitted: Instant::now(),
        attempts: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every submitted request is drained exactly once, even with
    /// several tenants submitting concurrently against a small queue
    /// (so submitters block on backpressure mid-run).
    #[test]
    fn no_request_lost_or_duplicated(
        per_tenant in proptest::collection::vec(1usize..40, 2..5),
        capacity in 2usize..16,
        quantum in 1u64..8,
    ) {
        let q = DrrQueue::new(capacity, quantum);
        let total: usize = per_tenant.iter().sum();
        let mut collected: Vec<u64> = Vec::with_capacity(total);
        thread::scope(|s| {
            for (t, &n) in per_tenant.iter().enumerate() {
                let q = &q;
                s.spawn(move || {
                    for i in 0..n {
                        let id = (t as u64) * 1_000 + i as u64;
                        q.submit_blocking(unit_request(id, t as u32, 1)).unwrap();
                    }
                });
            }
            while collected.len() < total {
                if let Some(shape) = q.next_shape_blocking() {
                    let round = q.take_batch(&shape, u64::MAX, Instant::now());
                    collected.extend(round.taken.into_iter().map(|r| r.id.0));
                }
            }
        });
        prop_assert!(q.is_empty());
        collected.sort_unstable();
        let mut expected: Vec<u64> = per_tenant
            .iter()
            .enumerate()
            .flat_map(|(t, &n)| (0..n as u64).map(move |i| (t as u64) * 1_000 + i))
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(collected, expected);
    }

    /// Two continuously backlogged tenants receive workload shares that
    /// never diverge by more than one request's workload: per round each
    /// is paid the same quantum, and at most one partial request's worth
    /// of deficit (< max workload) stays banked.
    #[test]
    fn drr_fairness_bound(
        quantum in 1u64..16,
        rounds in 1usize..20,
        seed_ws in proptest::collection::vec(1u64..4, 200),
    ) {
        let q = DrrQueue::new(4096, quantum);
        let max_w = 3u64;
        // Backlog each tenant beyond what `rounds` rounds can drain.
        let need = quantum * rounds as u64 + 10;
        for tenant in 0..2u32 {
            let mut sum = 0;
            for (id, &w) in (tenant as u64 * 10_000..).zip(seed_ws.iter().cycle()) {
                if sum >= need {
                    break;
                }
                q.try_submit(unit_request(id, tenant, w)).unwrap();
                sum += w;
            }
        }
        let mut served = [0u64; 2];
        for _ in 0..rounds {
            let round = q.take_batch(&Task::mssp(1), u64::MAX, Instant::now());
            for r in round.taken {
                served[r.request.tenant.0 as usize] += r.workload();
            }
        }
        let diff = served[0].abs_diff(served[1]);
        prop_assert!(
            diff < max_w,
            "served {:?} diverges by {} > {} after {} rounds (quantum {})",
            served, diff, max_w, rounds, quantum
        );
    }

    /// The queue admits exactly `capacity` requests, then refuses with
    /// `Full` until a drain frees space; `len` tracks the difference
    /// between submissions and drains throughout.
    #[test]
    fn backpressure_at_capacity(capacity in 1usize..32, refills in 1usize..5) {
        let q = DrrQueue::new(capacity, 8);
        let mut next_id = 0u64;
        for _ in 0..refills {
            while q.len() < capacity {
                q.try_submit(unit_request(next_id, (next_id % 3) as u32, 1)).unwrap();
                next_id += 1;
            }
            prop_assert_eq!(
                q.try_submit(unit_request(next_id, 0, 1)).unwrap_err(),
                SubmitError::Full
            );
            let drained = q
                .take_batch(&Task::mssp(1), u64::MAX, Instant::now())
                .taken
                .len();
            prop_assert!(drained >= 1);
            prop_assert_eq!(q.len(), capacity - drained);
        }
    }
}
