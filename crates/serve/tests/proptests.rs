//! Property tests for the multi-tenant DRR queue: conservation under
//! concurrent submit/drain, the deficit round-robin fairness bound,
//! backpressure at capacity, EDF starvation-freedom, and joint
//! controller determinism.

use mtvc_core::Task;
use mtvc_serve::{
    ControllerCfg, DrrQueue, JointController, QueuePolicy, QueuedRequest, RequestId, SloClass,
    SubmitError, TaskRequest, TenantId,
};
use mtvc_tune::OnlineLatencyModel;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::thread;
use std::time::{Duration, Instant};

fn unit_request(id: u64, tenant: u32, workload: u64) -> QueuedRequest {
    QueuedRequest {
        id: RequestId(id),
        request: TaskRequest::new(TenantId(tenant), Task::mssp(workload)),
        submitted: Instant::now(),
        attempts: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every submitted request is drained exactly once, even with
    /// several tenants submitting concurrently against a small queue
    /// (so submitters block on backpressure mid-run).
    #[test]
    fn no_request_lost_or_duplicated(
        per_tenant in proptest::collection::vec(1usize..40, 2..5),
        capacity in 2usize..16,
        quantum in 1u64..8,
    ) {
        let q = DrrQueue::new(capacity, quantum);
        let total: usize = per_tenant.iter().sum();
        let mut collected: Vec<u64> = Vec::with_capacity(total);
        thread::scope(|s| {
            for (t, &n) in per_tenant.iter().enumerate() {
                let q = &q;
                s.spawn(move || {
                    for i in 0..n {
                        let id = (t as u64) * 1_000 + i as u64;
                        q.submit_blocking(unit_request(id, t as u32, 1)).unwrap();
                    }
                });
            }
            while collected.len() < total {
                if let Some(shape) = q.next_shape_blocking() {
                    let round = q.take_batch(&shape, u64::MAX, Instant::now());
                    collected.extend(round.taken.into_iter().map(|r| r.id.0));
                }
            }
        });
        prop_assert!(q.is_empty());
        collected.sort_unstable();
        let mut expected: Vec<u64> = per_tenant
            .iter()
            .enumerate()
            .flat_map(|(t, &n)| (0..n as u64).map(move |i| (t as u64) * 1_000 + i))
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(collected, expected);
    }

    /// Two continuously backlogged tenants receive workload shares that
    /// never diverge by more than one request's workload: per round each
    /// is paid the same quantum, and at most one partial request's worth
    /// of deficit (< max workload) stays banked.
    #[test]
    fn drr_fairness_bound(
        quantum in 1u64..16,
        rounds in 1usize..20,
        seed_ws in proptest::collection::vec(1u64..4, 200),
    ) {
        let q = DrrQueue::new(4096, quantum);
        let max_w = 3u64;
        // Backlog each tenant beyond what `rounds` rounds can drain.
        let need = quantum * rounds as u64 + 10;
        for tenant in 0..2u32 {
            let mut sum = 0;
            for (id, &w) in (tenant as u64 * 10_000..).zip(seed_ws.iter().cycle()) {
                if sum >= need {
                    break;
                }
                q.try_submit(unit_request(id, tenant, w)).unwrap();
                sum += w;
            }
        }
        let mut served = [0u64; 2];
        for _ in 0..rounds {
            let round = q.take_batch(&Task::mssp(1), u64::MAX, Instant::now());
            for r in round.taken {
                served[r.request.tenant.0 as usize] += r.workload();
            }
        }
        let diff = served[0].abs_diff(served[1]);
        prop_assert!(
            diff < max_w,
            "served {:?} diverges by {} > {} after {} rounds (quantum {})",
            served, diff, max_w, rounds, quantum
        );
    }

    /// The queue admits exactly `capacity` requests, then refuses with
    /// `Full` until a drain frees space; `len` tracks the difference
    /// between submissions and drains throughout.
    #[test]
    fn backpressure_at_capacity(capacity in 1usize..32, refills in 1usize..5) {
        let q = DrrQueue::new(capacity, 8);
        let mut next_id = 0u64;
        for _ in 0..refills {
            while q.len() < capacity {
                q.try_submit(unit_request(next_id, (next_id % 3) as u32, 1)).unwrap();
                next_id += 1;
            }
            prop_assert_eq!(
                q.try_submit(unit_request(next_id, 0, 1)).unwrap_err(),
                SubmitError::Full
            );
            let drained = q
                .take_batch(&Task::mssp(1), u64::MAX, Instant::now())
                .taken
                .len();
            prop_assert!(drained >= 1);
            prop_assert_eq!(q.len(), capacity - drained);
        }
    }

    /// EDF-within-DRR is starvation-free: the deadline sort only
    /// permutes each round's visit order, so a continuously backlogged
    /// lane of *any* class — including deadline-free Batch competing
    /// against deadline-heavy Interactive lanes — is paid its weighted
    /// quantum every single round, whatever the deadline layout.
    #[test]
    fn edf_never_starves_a_backlogged_class(
        backlog in 8usize..40,
        quantum in 1u64..6,
        deadline_ms in proptest::collection::vec(1u64..5_000, 8),
        interactive_lanes in 1u32..4,
    ) {
        let q = DrrQueue::new(4096, quantum).with_policy(QueuePolicy::slo_aware());
        let policy = q.policy();
        // One deadline-free Batch tenant (tenant 0) plus several
        // Interactive tenants whose arbitrary deadlines feed the EDF
        // sort. Every lane is backlogged beyond one round's payout.
        let mut id = 0u64;
        for i in 0..backlog {
            let mut r = unit_request(id, 0, 1);
            r.request = r.request.with_class(SloClass::Batch);
            q.try_submit(r).unwrap();
            id += 1;
            for t in 1..=interactive_lanes {
                let mut r = unit_request(id, t, 1);
                r.request = r
                    .request
                    .with_class(SloClass::Interactive)
                    // Far enough out that nothing expires mid-test.
                    .with_deadline(Duration::from_secs(
                        60 + deadline_ms[(i + t as usize) % deadline_ms.len()],
                    ));
                q.try_submit(r).unwrap();
                id += 1;
            }
        }
        let rounds = 3usize;
        let mut served = vec![0u64; interactive_lanes as usize + 1];
        for _ in 0..rounds {
            let round = q.take_batch(&Task::mssp(1), u64::MAX, Instant::now());
            for r in round.taken {
                served[r.request.tenant.0 as usize] += 1;
            }
        }
        // Each backlogged lane gets exactly its weighted quantum per
        // round (unit workloads, no expiry, unconstrained budget).
        let expect = |class: SloClass| {
            (rounds as u64 * quantum * policy.weight(class)).min(backlog as u64)
        };
        prop_assert_eq!(served[0], expect(SloClass::Batch), "batch lane starved");
        for &s in &served[1..] {
            prop_assert_eq!(s, expect(SloClass::Interactive));
        }
    }

    /// For a fixed seed the joint controller is bit-deterministic:
    /// replaying the same pseudo-random (depth, headroom, slack)
    /// sequence against an identically trained latency model yields an
    /// identical decision stream.
    #[test]
    fn controller_is_deterministic_for_fixed_seed(
        seed in any::<u64>(),
        steps in 1usize..120,
        workers in 1usize..8,
    ) {
        let run = || {
            let mut model = OnlineLatencyModel::new();
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut c = JointController::new(ControllerCfg::new(workers));
            (0..steps)
                .map(|_| {
                    // Interleave observations so the model's fit (and
                    // therefore the deadline cap) evolves mid-stream.
                    let w = rng.gen_range(1u64..512);
                    model.observe(w, 0.05 + 0.002 * w as f64);
                    let depth = rng.gen_range(0usize..200);
                    let slack = if rng.gen_bool(0.5) {
                        Some(Duration::from_millis(rng.gen_range(1u64..2_000)))
                    } else {
                        None
                    };
                    c.decide(depth, rng.gen_range(1u64..1_024), slack, &model)
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
