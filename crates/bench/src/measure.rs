//! Shared measurement harness for the perf-snapshot bins
//! (`bench_pr3`, `bench_pr5`, `bench_pr7`, `bench_pr8`).
//!
//! Consolidates the two pieces every snapshot bin used to carry its
//! own copy of:
//!
//! * **[`CountingAlloc`]** — a system-allocator wrapper counting every
//!   allocated byte. Each bin still declares its own
//!   `#[global_allocator]` static (the attribute must live in the
//!   binary), but the type, the counter, and the steady-state
//!   per-round math live here.
//! * **best-of-reps timing** — warm-up run, one instrumented run
//!   profiling per-round allocation, then `reps` timed runs keeping
//!   the *minimum* wall time (which filters scheduler noise on shared
//!   runners), asserting driver determinism throughout. When several
//!   cells are measured together the timed reps are interleaved
//!   round-robin so each cell samples the same background-load
//!   windows — back-to-back reps would let a load spike hit one
//!   cell's entire sample and skew every cross-cell ratio.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapper counting every allocated byte (allocations
/// only — frees are not subtracted, so deltas measure allocation
/// *churn*, which is exactly what buffer recycling removes). Bins
/// activate it with `#[global_allocator] static GLOBAL: CountingAlloc
/// = CountingAlloc;`.
pub struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count only the growth; shrinks are free.
        let grown = new_size.saturating_sub(layout.size());
        ALLOCATED.fetch_add(grown as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total bytes allocated so far (monotone; see [`CountingAlloc`]).
pub fn allocated_bytes() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

/// Rounds skipped before the steady-state allocation window opens
/// (buffers are still growing toward their high-water marks).
pub const WARMUP_ROUNDS: usize = 3;

/// Smallest per-round allocation delta after the warm-up window: what
/// a round costs once every recycled buffer has reached its high-water
/// capacity. `marks` are counter snapshots taken at round boundaries.
pub fn steady_bytes(marks: &[u64]) -> u64 {
    let deltas: Vec<u64> = marks.windows(2).map(|w| w[1] - w[0]).collect();
    deltas
        .iter()
        .skip(WARMUP_ROUNDS.min(deltas.len().saturating_sub(1)))
        .copied()
        .min()
        .unwrap_or(0)
}

/// One measured benchmark cell.
pub struct Measurement<R> {
    /// The driver's (determinism-checked) report.
    pub report: R,
    /// Best wall time of the timed reps, seconds.
    pub best_secs: f64,
    /// Mean bytes allocated per timed rep.
    pub total_bytes_per_rep: u64,
    /// Smallest post-warm-up per-round allocation delta.
    pub steady_bytes_per_round: u64,
}

/// A round-loop driver as the harness sees it: runs one full loop,
/// calling the round-end hook after each round, and returns a report.
pub type RoundDriver<'a, R> = &'a dyn Fn(&mut dyn FnMut(usize)) -> R;

/// Measure several round-loop drivers together. Every driver takes the
/// round-end hook the allocation profile snapshots through. Sequence
/// per driver: one warm-up run (so timed runs start from warmed
/// buffers — for recycled-slab drivers that means pooled slabs, the
/// production steady state), one instrumented run, then `reps` timed
/// runs interleaved round-robin across all drivers, keeping the best
/// time. Every run is asserted identical to the first.
pub fn measure_all_rounds<R: PartialEq + std::fmt::Debug>(
    reps: usize,
    drivers: &[RoundDriver<'_, R>],
) -> Vec<Measurement<R>> {
    let profiled: Vec<(R, u64)> = drivers
        .iter()
        .map(|d| {
            let warm = d(&mut |_| {});
            let mut marks: Vec<u64> = Vec::with_capacity(64);
            let report = d(&mut |_| marks.push(allocated_bytes()));
            assert_eq!(warm, report, "driver must be deterministic");
            (report, steady_bytes(&marks))
        })
        .collect();

    let mut best = vec![f64::INFINITY; drivers.len()];
    let mut total = vec![0u64; drivers.len()];
    for _ in 0..reps {
        for (i, d) in drivers.iter().enumerate() {
            let before = allocated_bytes();
            let start = Instant::now();
            let r = d(&mut |_| {});
            best[i] = best[i].min(start.elapsed().as_secs_f64());
            total[i] += allocated_bytes() - before;
            assert_eq!(r, profiled[i].0, "driver must be deterministic");
        }
    }
    profiled
        .into_iter()
        .zip(best)
        .zip(total)
        .map(|(((report, steady), best_secs), total)| Measurement {
            report,
            best_secs,
            total_bytes_per_rep: total / reps.max(1) as u64,
            steady_bytes_per_round: steady,
        })
        .collect()
}

/// [`measure_all_rounds`] for a single driver.
pub fn measure_rounds<R: PartialEq + std::fmt::Debug>(
    reps: usize,
    driver: impl Fn(&mut dyn FnMut(usize)) -> R,
) -> Measurement<R> {
    measure_all_rounds(reps, &[&|hook: &mut dyn FnMut(usize)| driver(hook)])
        .pop()
        .expect("one driver")
}

/// Interleaved best-of-reps timing for hook-less drivers (no
/// allocation profile): one warm-up run each, then `reps` timed runs
/// round-robin. Returns each driver's report and best seconds.
pub fn measure_interleaved<R: PartialEq + std::fmt::Debug>(
    reps: usize,
    drivers: &[&dyn Fn() -> R],
) -> Vec<(R, f64)> {
    let reports: Vec<R> = drivers.iter().map(|d| d()).collect();
    let mut best = vec![f64::INFINITY; drivers.len()];
    for _ in 0..reps {
        for (i, driver) in drivers.iter().enumerate() {
            let start = Instant::now();
            let r = driver();
            best[i] = best[i].min(start.elapsed().as_secs_f64());
            assert_eq!(r, reports[i], "driver must be deterministic");
        }
    }
    reports.into_iter().zip(best).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_bytes_takes_post_warmup_minimum() {
        // Deltas: 100, 50, 10, 5, 7 — warm-up skips the first 3.
        let marks = [0u64, 100, 150, 160, 165, 172];
        assert_eq!(steady_bytes(&marks), 5);
        assert_eq!(steady_bytes(&[]), 0);
        assert_eq!(steady_bytes(&[42]), 0);
    }

    #[test]
    fn measure_rounds_reports_best_of_reps() {
        let m = measure_rounds(3, |hook| {
            for r in 0..5 {
                hook(r);
            }
            5usize
        });
        assert_eq!(m.report, 5);
        assert!(m.best_secs.is_finite() && m.best_secs >= 0.0);
        assert_eq!(m.steady_bytes_per_round, 0, "loop allocates nothing");
    }

    #[test]
    fn measure_interleaved_checks_determinism() {
        let a = || 1u64;
        let b = || 2u64;
        let out = measure_interleaved(2, &[&a, &b]);
        assert_eq!(out[0].0, 1);
        assert_eq!(out[1].0, 2);
    }
}
