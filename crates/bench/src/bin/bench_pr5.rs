//! PR 5 perf snapshot: dense batch-state slabs vs the hash-map state
//! layout, on the same single-threaded round loop the earlier envelope
//! benches use. Sweeps the batch width W ∈ {1, 8, 64} on MSSP — the
//! width axis is the whole point: hash-map state pays a probe per
//! (vertex, query) touch, slab rows pay a multiply — and emits
//! `BENCH_pr5.json` in the working directory.
//!
//! Both kernels run the identical envelope hot path, so every cell
//! pair is traffic-identical by construction and the timing delta
//! isolates the state layout. Cells run with the combiner off and on:
//! the headline `slab_speedup_*` keys come from the combiner-off
//! configuration — with sender-side combining enabled, duplicates are
//! folded *before* the receiver's state phase, so the layout delta is
//! partially masked by routing (both numbers are in the JSON). The
//! slab cells run through a [`SlabRecycler`], the production
//! configuration: after the warm-up run the state phase allocates
//! nothing, so `steady_bytes_per_round` measures what a whole round
//! costs once every buffer — routing and state — has reached its
//! high-water capacity.
//!
//! `PR5_SMOKE=1` shrinks the graph and rep count for CI: the parity
//! asserts still run end to end, the timings are not meaningful.
//! Timing and allocation mechanics live in [`mtvc_bench::measure`]
//! (shared with the other snapshot bins).

use mtvc_bench::measure::{measure_rounds, CountingAlloc, Measurement};
use mtvc_bench::round_loop::{drive_current, drive_slab_recycled, RoundLoopReport};
use mtvc_engine::{LocalIndex, SlabRecycler};
use mtvc_graph::partition::{HashPartitioner, Partitioner};
use mtvc_graph::{generators, VertexId};
use mtvc_tasks::{MsspProgram, MsspSlabProgram};
use std::io::Write;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const WORKERS: usize = 4;
const SEED: u64 = 0x9E3;
/// Batch widths swept (queries per batch).
const WIDTHS: [usize; 3] = [1, 8, 64];

struct Params {
    vertices: usize,
    edges: usize,
    /// Timed repetitions per cell (single-threaded full runs).
    reps: usize,
}

impl Params {
    fn from_env() -> Params {
        if std::env::var("PR5_SMOKE").is_ok_and(|v| v == "1") {
            Params {
                vertices: 4_000,
                edges: 16_000,
                reps: 1,
            }
        } else {
            Params {
                vertices: 20_000,
                edges: 80_000,
                reps: 5,
            }
        }
    }
}

struct CellResult {
    report: RoundLoopReport,
    rounds_per_sec: f64,
    total_bytes_per_round: u64,
    steady_bytes_per_round: u64,
}

impl From<Measurement<RoundLoopReport>> for CellResult {
    fn from(m: Measurement<RoundLoopReport>) -> CellResult {
        CellResult {
            report: m.report,
            rounds_per_sec: m.report.rounds as f64 / m.best_secs,
            total_bytes_per_round: m.total_bytes_per_rep / m.report.rounds as u64,
            steady_bytes_per_round: m.steady_bytes_per_round,
        }
    }
}

fn json_cell(name: &str, r: &CellResult) -> String {
    format!(
        "    \"{name}\": {{\"rounds\": {}, \"sent_wire\": {}, \"delivered_tuples\": {}, \
         \"rounds_per_sec\": {:.2}, \"total_bytes_per_round\": {}, \
         \"steady_bytes_per_round\": {}}}",
        r.report.rounds,
        r.report.sent_wire,
        r.report.delivered_tuples,
        r.rounds_per_sec,
        r.total_bytes_per_round,
        r.steady_bytes_per_round,
    )
}

fn main() {
    let params = Params::from_env();
    let g = generators::power_law(params.vertices, params.edges, 2.3, 42);
    let part = HashPartitioner::default().partition(&g, WORKERS);
    let locals = LocalIndex::build(&part);

    let mut cells: Vec<String> = Vec::new();
    let mut summary: Vec<String> = Vec::new();
    for combine in [false, true] {
        let tag = if combine { "combine" } else { "nocombine" };
        for width in WIDTHS {
            let sources: Vec<VertexId> = (0..width as u32)
                .map(|q| (q * 997) % params.vertices as VertexId)
                .collect();
            let hashmap = MsspProgram::new(sources.clone());
            let slab_prog = MsspSlabProgram::new(sources);
            let recycler: SlabRecycler<u64> = SlabRecycler::new();

            let base: CellResult = measure_rounds(params.reps, |hook| {
                drive_current(&hashmap, &g, &part, &locals, combine, SEED, hook)
            })
            .into();
            let slab: CellResult = measure_rounds(params.reps, |hook| {
                drive_slab_recycled(
                    &slab_prog, &recycler, &g, &part, &locals, combine, SEED, hook,
                )
            })
            .into();
            // Same kernel semantics, same envelope path: exact parity.
            assert_eq!(base.report, slab.report, "mssp parity (W={width}, {tag})");

            let speedup = slab.rounds_per_sec / base.rounds_per_sec;
            println!(
                "mssp_{tag}_w{width}: slab {:.1} rounds/s vs hashmap {:.1} rounds/s \
                 ({speedup:.2}x), steady alloc/round {} vs {} bytes",
                slab.rounds_per_sec,
                base.rounds_per_sec,
                slab.steady_bytes_per_round,
                base.steady_bytes_per_round
            );
            cells.push(json_cell(&format!("mssp_slab_{tag}_w{width}"), &slab));
            cells.push(json_cell(&format!("mssp_hashmap_{tag}_w{width}"), &base));
            // Headline keys: the combiner-off (state-bound) cells.
            if !combine {
                summary.push(format!("  \"slab_speedup_w{width}\": {speedup:.3}"));
                summary.push(format!(
                    "  \"slab_steady_bytes_per_round_w{width}\": {}",
                    slab.steady_bytes_per_round
                ));
            }
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"pr5_state_slab\",\n  \"graph\": {{\"vertices\": {}, \
         \"edges\": {}, \"workers\": {WORKERS}}},\n  \"reps\": {},\n{},\n  \
         \"cells\": {{\n{}\n  }}\n}}\n",
        params.vertices,
        params.edges,
        params.reps,
        summary.join(",\n"),
        cells.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_pr5.json").expect("create BENCH_pr5.json");
    f.write_all(json.as_bytes()).expect("write BENCH_pr5.json");
    println!("-> BENCH_pr5.json");
}
