//! PR 7 perf snapshot: lane-batched SIMD relax kernels + the compact
//! wire format on the multi-task hot path. Sweeps the batch width
//! W ∈ {1, 8, 64} on MSSP over the same graph/partition setup as
//! `bench_pr5`, and emits `BENCH_pr7.json` in the working directory.
//!
//! Cells per width:
//!
//! * `mssp_scalar_nocombine_w{W}` / `mssp_scalar_combine_w{W}` — the
//!   PR 5 baseline configurations ([`MsspSlabProgram`], tuple wire)
//!   re-measured on this host; `combine` is the configuration whose
//!   W=64 regression this PR fixes.
//! * `mssp_scalar_adaptive_w{W}` — static combiner replaced by the
//!   adaptive per-(worker, round) toggle: tracks `nocombine` where
//!   combining loses and `combine` where it wins.
//! * `mssp_lane_full_w{W}` — the full PR 7 hot path and the headline
//!   cell: [`MsspLaneSlabProgram`] (one envelope relaxes eight query
//!   lanes), adaptive combining (chunk keys fold ~3x better than
//!   scalar keys), and [`WireFormat::Compact`] (the router charges
//!   real post-codec bucket bytes).
//! * `mssp_lane_compact_w{W}` — lane kernels + compact wire with the
//!   combiner off, isolating the kernel/codec contribution.
//!
//! Every cell is pinned to its siblings on rounds and `sent_wire`
//! (lane batching and combining both conserve pre-fold payload units),
//! and every compact cell must measure strictly fewer encoded bytes
//! than the `payload_units * msg_bytes` estimate. A broadcast cell
//! checks the receiver-side request-respond cache takes hits on
//! power-law hubs.
//!
//! `PR7_SMOKE=1` shrinks the graph and rep count for CI: all asserts
//! still run end to end, the timings are not meaningful.

use mtvc_bench::measure::measure_interleaved;
use mtvc_bench::round_loop::{drive_core_policy, PolicyReport};
use mtvc_engine::{LocalIndex, PerSlab, RoutePolicy, SlabProgram, WireFormat};
use mtvc_graph::partition::Partition;
use mtvc_graph::partition::{HashPartitioner, Partitioner};
use mtvc_graph::{generators, Graph, VertexId};
use mtvc_tasks::{MsspBroadcastSlabProgram, MsspLaneSlabProgram, MsspSlabProgram};
use std::io::Write;

const WORKERS: usize = 4;
const SEED: u64 = 0x9E3;
/// Batch widths swept (queries per batch).
const WIDTHS: [usize; 3] = [1, 8, 64];
/// `BENCH_pr5.json` reference rounds/sec for the same 20k/80k W=64
/// workload (`mssp_slab_combine_w64` / `mssp_slab_nocombine_w64`),
/// recorded so the JSON carries the cross-PR speedup explicitly.
/// Host-load drift between the two recordings is not corrected for;
/// the same-run `simd_speedup_*` ratios are the noise-robust numbers.
const PR5_COMBINE_W64_RPS: f64 = 12.08;
const PR5_NOCOMBINE_W64_RPS: f64 = 19.65;

struct Params {
    vertices: usize,
    edges: usize,
    /// Timed repetitions per cell (single-threaded full runs).
    reps: usize,
}

impl Params {
    fn from_env() -> Params {
        if std::env::var("PR7_SMOKE").is_ok_and(|v| v == "1") {
            Params {
                vertices: 4_000,
                edges: 16_000,
                reps: 1,
            }
        } else {
            Params {
                vertices: 20_000,
                edges: 80_000,
                reps: 5,
            }
        }
    }
}

struct CellResult {
    report: PolicyReport,
    rounds_per_sec: f64,
}

/// Interleaved best-of-reps timing (see
/// [`mtvc_bench::measure::measure_interleaved`] for the sampling
/// rationale), mapped into rounds/sec cells.
fn measure_all(reps: usize, drivers: &[&dyn Fn() -> PolicyReport]) -> Vec<CellResult> {
    measure_interleaved(reps, drivers)
        .into_iter()
        .map(|(report, best)| CellResult {
            report,
            rounds_per_sec: report.report.rounds as f64 / best,
        })
        .collect()
}

fn run_slab<P: SlabProgram>(
    program: &P,
    g: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    combine: bool,
    policy: &RoutePolicy,
) -> PolicyReport {
    drive_core_policy(
        &PerSlab::new(program),
        g,
        part,
        locals,
        combine,
        policy,
        SEED,
        |_| {},
    )
}

fn json_cell(name: &str, r: &CellResult) -> String {
    format!(
        "    \"{name}\": {{\"rounds\": {}, \"sent_wire\": {}, \"delivered_tuples\": {}, \
         \"rounds_per_sec\": {:.2}, \"encoded_wire_bytes\": {}, \
         \"estimated_wire_bytes\": {}, \"respond_hits\": {}, \"respond_misses\": {}}}",
        r.report.report.rounds,
        r.report.report.sent_wire,
        r.report.report.delivered_tuples,
        r.rounds_per_sec,
        r.report.encoded_wire_bytes,
        r.report.estimated_wire_bytes,
        r.report.respond_hits,
        r.report.respond_misses,
    )
}

fn main() {
    let params = Params::from_env();
    let g = generators::power_law(params.vertices, params.edges, 2.3, 42);
    let part = HashPartitioner::default().partition(&g, WORKERS);
    let locals = LocalIndex::build(&part);

    let tuples = RoutePolicy::default();
    let compact = RoutePolicy {
        wire_format: WireFormat::Compact,
        ..RoutePolicy::default()
    };
    let adaptive = RoutePolicy {
        adaptive_combine: true,
        ..RoutePolicy::default()
    };
    let full = RoutePolicy {
        wire_format: WireFormat::Compact,
        adaptive_combine: true,
        ..RoutePolicy::default()
    };

    let mut cells: Vec<String> = Vec::new();
    let mut summary: Vec<String> = Vec::new();
    for width in WIDTHS {
        let sources: Vec<VertexId> = (0..width as u32)
            .map(|q| (q * 997) % params.vertices as VertexId)
            .collect();
        let scalar_prog = MsspSlabProgram::new(sources.clone());
        let lane_prog = MsspLaneSlabProgram::new(sources);

        let scalar_d = || run_slab(&scalar_prog, &g, &part, &locals, false, &tuples);
        let combine_d = || run_slab(&scalar_prog, &g, &part, &locals, true, &tuples);
        let adaptive_d = || run_slab(&scalar_prog, &g, &part, &locals, true, &adaptive);
        let lane_full_d = || run_slab(&lane_prog, &g, &part, &locals, true, &full);
        let lane_nc_d = || run_slab(&lane_prog, &g, &part, &locals, false, &compact);
        let mut results = measure_all(
            params.reps,
            &[&scalar_d, &combine_d, &adaptive_d, &lane_full_d, &lane_nc_d],
        );
        let lane_nc = results.pop().expect("lane_nc");
        let lane_full = results.pop().expect("lane_full");
        let adaptive_cell = results.pop().expect("adaptive");
        let combine_cell = results.pop().expect("combine");
        let scalar = results.pop().expect("scalar");

        // Lane batching and combining both conserve rounds and
        // pre-fold payload units exactly.
        for (name, cell) in [
            ("scalar_combine", &combine_cell),
            ("scalar_adaptive", &adaptive_cell),
            ("lane_full", &lane_full),
            ("lane_nocombine", &lane_nc),
        ] {
            assert_eq!(
                cell.report.report.rounds, scalar.report.report.rounds,
                "{name} round parity (W={width})"
            );
            assert_eq!(
                cell.report.report.sent_wire, scalar.report.report.sent_wire,
                "{name} wire parity (W={width})"
            );
        }
        // The codec must strictly undercut the size_of-style estimate.
        for (name, cell) in [("lane_full", &lane_full), ("lane_nocombine", &lane_nc)] {
            assert!(
                cell.report.encoded_wire_bytes < cell.report.estimated_wire_bytes,
                "compact encoding must shrink bytes ({name}, W={width}): {} vs {}",
                cell.report.encoded_wire_bytes,
                cell.report.estimated_wire_bytes
            );
        }

        let simd_speedup = lane_full.rounds_per_sec / combine_cell.rounds_per_sec;
        let reduction = 1.0
            - lane_full.report.encoded_wire_bytes as f64
                / lane_full.report.estimated_wire_bytes as f64;
        let adaptive_speedup = adaptive_cell.rounds_per_sec / combine_cell.rounds_per_sec;
        println!(
            "w{width}: lane+adaptive+compact {:.1} r/s vs scalar combine {:.1} r/s \
             ({simd_speedup:.2}x; scalar nocombine {:.1}, lane nocombine {:.1}), \
             encoded {}B vs estimated {}B (-{:.0}%), \
             scalar adaptive {:.1} r/s ({adaptive_speedup:.2}x vs static)",
            lane_full.rounds_per_sec,
            combine_cell.rounds_per_sec,
            scalar.rounds_per_sec,
            lane_nc.rounds_per_sec,
            lane_full.report.encoded_wire_bytes,
            lane_full.report.estimated_wire_bytes,
            reduction * 100.0,
            adaptive_cell.rounds_per_sec,
        );
        cells.push(json_cell(
            &format!("mssp_scalar_nocombine_w{width}"),
            &scalar,
        ));
        cells.push(json_cell(
            &format!("mssp_scalar_combine_w{width}"),
            &combine_cell,
        ));
        cells.push(json_cell(
            &format!("mssp_scalar_adaptive_w{width}"),
            &adaptive_cell,
        ));
        cells.push(json_cell(&format!("mssp_lane_full_w{width}"), &lane_full));
        cells.push(json_cell(&format!("mssp_lane_compact_w{width}"), &lane_nc));
        summary.push(format!("  \"simd_speedup_w{width}\": {simd_speedup:.3}"));
        summary.push(format!("  \"encoded_reduction_w{width}\": {reduction:.3}"));
        if width == 64 {
            summary.push(format!("  \"adaptive_speedup_w64\": {adaptive_speedup:.3}"));
            // The smoke graph is a different workload; the pr5
            // reference only applies to the full 20k/80k sweep.
            if params.vertices == 20_000 {
                summary.push(format!(
                    "  \"lane_full_vs_pr5_combine_w64\": {:.3}",
                    lane_full.rounds_per_sec / PR5_COMBINE_W64_RPS
                ));
                summary.push(format!(
                    "  \"lane_full_vs_pr5_nocombine_w64\": {:.3}",
                    lane_full.rounds_per_sec / PR5_NOCOMBINE_W64_RPS
                ));
            }
        }
    }

    // Receiver-side request-respond cache: unmirrored broadcasts from
    // power-law hubs must take hits, and every hit elides its payload
    // from the encoded stream.
    {
        let sources: Vec<VertexId> = (0..8u32)
            .map(|q| (q * 997) % params.vertices as VertexId)
            .collect();
        let prog = MsspBroadcastSlabProgram::new(sources);
        let cache_policy = RoutePolicy {
            wire_format: WireFormat::Compact,
            respond_cache_threshold: 16,
            ..RoutePolicy::default()
        };
        let cold_d = || run_slab(&prog, &g, &part, &locals, false, &compact);
        let cached_d = || run_slab(&prog, &g, &part, &locals, false, &cache_policy);
        let mut results = measure_all(params.reps, &[&cold_d, &cached_d]);
        let cached = results.pop().expect("cached");
        let cold = results.pop().expect("cold");
        assert_eq!(cached.report.report, cold.report.report, "cache parity");
        assert!(
            cached.report.respond_hits > 0,
            "power-law hubs must produce cache hits"
        );
        assert!(
            cached.report.encoded_wire_bytes < cold.report.encoded_wire_bytes,
            "cache hits must elide payload bytes: {} vs {}",
            cached.report.encoded_wire_bytes,
            cold.report.encoded_wire_bytes
        );
        let hit_rate = cached.report.respond_hits as f64
            / (cached.report.respond_hits + cached.report.respond_misses) as f64;
        println!(
            "respond cache (w8 broadcast, threshold 16): {} hits / {} misses \
             ({:.0}% hit rate), encoded {}B vs uncached {}B",
            cached.report.respond_hits,
            cached.report.respond_misses,
            hit_rate * 100.0,
            cached.report.encoded_wire_bytes,
            cold.report.encoded_wire_bytes,
        );
        cells.push(json_cell("mssp_bcast_respond_cache_w8", &cached));
        cells.push(json_cell("mssp_bcast_no_cache_w8", &cold));
        summary.push(format!("  \"respond_cache_hit_rate\": {hit_rate:.3}"));
    }

    let json = format!(
        "{{\n  \"bench\": \"pr7_simd_wire\",\n  \"graph\": {{\"vertices\": {}, \
         \"edges\": {}, \"workers\": {WORKERS}}},\n  \"reps\": {},\n{},\n  \
         \"cells\": {{\n{}\n  }}\n}}\n",
        params.vertices,
        params.edges,
        params.reps,
        summary.join(",\n"),
        cells.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_pr7.json").expect("create BENCH_pr7.json");
    f.write_all(json.as_bytes()).expect("write BENCH_pr7.json");
    println!("-> BENCH_pr7.json");
}
