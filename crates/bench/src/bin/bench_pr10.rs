//! PR 10 out-of-core snapshot: real partition paging as the measured
//! hot path. Emits `BENCH_pr10.json` in the working directory.
//!
//! Two experiments:
//!
//! 1. **Over-budget completion** (ledger check): an over-budget dataset
//!    preset (`Dataset::generate_over_budget`, adjacency ≥ 4× the
//!    `OOC_DEMO_BUDGET` paging budget) runs to completion through the
//!    pager. The headline invariant — asserted, not just reported — is
//!    that the measured peak resident bytes of the partition cache
//!    never exceed the budget, while the pager really moves bytes
//!    (loads > 0) and the run is deterministic (two runs, identical
//!    statistics).
//!
//! 2. **Frontier-density vs round-robin** (scheduling win): a one-lane
//!    hop sweep around a directed ring keeps exactly one vertex active
//!    per round — the shrinking-frontier regime partition scheduling
//!    exists for. Round-robin must stream every partition every round
//!    (GraphD semi-streaming); frontier-density must skip every
//!    empty-frontier partition, load *strictly fewer* bytes (asserted
//!    in both modes), and in full mode — where the backing store is
//!    real temp files — clear ≥ 1.2× round-robin's rounds/sec.
//!
//! `PR10_SMOKE=1` shrinks the graphs, keeps the backing store
//! in-memory, and relaxes the wall-clock assertion to parity.

use mtvc_cluster::ClusterSpec;
use mtvc_engine::{
    Context, Delivery, EngineConfig, Message, OocConfig, PagingConfig, PartitionSchedule, Runner,
    SlabProgram, SlabRowMut, StoreKind, SystemProfile,
};
use mtvc_graph::datasets::{Dataset, OOC_DEMO_BUDGET, OOC_OVERCOMMIT};
use mtvc_graph::generators;
use mtvc_graph::partition::HashPartitioner;
use mtvc_graph::{Graph, VertexId};
use mtvc_metrics::{Bytes, RunStats};
use std::io::Write;
use std::time::Instant;

const SEED: u64 = 0x10C0;

struct Params {
    /// Ring length for the frontier experiment (also its round count).
    ring: usize,
    /// Page-cache budget for the frontier experiment, bytes.
    ring_budget: u64,
    /// Target encoded partition size for the frontier experiment.
    ring_partition: u64,
    /// Timed repetitions per schedule.
    reps: usize,
    /// Backing store for both experiments.
    store: StoreKind,
    /// Whether the frontier-density rounds/sec win must be ≥ 1.2×.
    strict: bool,
}

impl Params {
    fn from_env() -> Params {
        if std::env::var("PR10_SMOKE").is_ok_and(|v| v == "1") {
            Params {
                ring: 512,
                ring_budget: 384,
                ring_partition: 96,
                reps: 2,
                store: StoreKind::Memory,
                strict: false,
            }
        } else {
            Params {
                ring: 4096,
                ring_budget: 1024,
                ring_partition: 256,
                reps: 3,
                store: StoreKind::TempFile,
                strict: true,
            }
        }
    }
}

/// Multi-lane hop flood over a state slab: lane `q` floods hop counts
/// from source vertex `q`. With one lane on a directed ring the active
/// frontier is a single vertex sweeping the cycle — the sparsest
/// possible frontier, held for `n` rounds.
struct HopFlood {
    lanes: usize,
}

#[derive(Clone, Debug)]
struct Hop {
    lane: u16,
    dist: u64,
}

impl Message for Hop {
    fn combine_key(&self) -> Option<u64> {
        Some(u64::from(self.lane))
    }
    fn merge(&mut self, other: &Self) {
        self.dist = self.dist.min(other.dist);
    }
}

impl SlabProgram for HopFlood {
    type Message = Hop;
    type Cell = u64;
    type Out = Vec<u64>;

    fn width(&self) -> usize {
        self.lanes
    }
    fn empty_cell(&self) -> u64 {
        u64::MAX
    }
    fn message_bytes(&self) -> u64 {
        12
    }

    fn init(&self, v: VertexId, mut row: SlabRowMut<'_, u64>, ctx: &mut Context<'_, Hop>) {
        if (v as usize) < self.lanes {
            let q = v as usize;
            row.relax_min(q, 0);
            for &t in ctx.neighbors() {
                ctx.send(
                    t,
                    Hop {
                        lane: q as u16,
                        dist: 1,
                    },
                    1,
                );
            }
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        mut row: SlabRowMut<'_, u64>,
        inbox: &[Delivery<Hop>],
        ctx: &mut Context<'_, Hop>,
    ) {
        for d in inbox {
            row.relax_min(d.msg.lane as usize, d.msg.dist);
        }
        let mut improved = Vec::new();
        row.drain(|q, cell| improved.push((q, *cell)));
        for (q, dist) in improved {
            for &t in ctx.neighbors() {
                ctx.send(
                    t,
                    Hop {
                        lane: q as u16,
                        dist: dist + 1,
                    },
                    1,
                );
            }
        }
    }

    fn extract(&self, _v: VertexId, row: &[u64]) -> Vec<u64> {
        row.to_vec()
    }
}

fn paged_config(
    workers: usize,
    budget: u64,
    partition_bytes: u64,
    schedule: PartitionSchedule,
    store: StoreKind,
) -> EngineConfig {
    let mut cfg = EngineConfig::new(ClusterSpec::galaxy(workers), SystemProfile::base("pr10"));
    cfg.seed = SEED;
    cfg.profile.out_of_core = Some(OocConfig {
        message_budget: Bytes::mib(64),
        stream_edges: true,
        paging: Some(PagingConfig {
            budget: Bytes::new(budget),
            partition_bytes: Bytes::new(partition_bytes),
            schedule,
            page_state: false,
            store,
        }),
    });
    cfg
}

// ---------------------------------------------------------------------
// Experiment 1: over-budget graph completes within the budget.
// ---------------------------------------------------------------------

struct OverBudget {
    adjacency_bytes: u64,
    budget: u64,
    peak_resident: u64,
    loaded_bytes: u64,
    partition_loads: u64,
    spilled_bytes: u64,
    rounds: usize,
}

fn over_budget(p: &Params) -> OverBudget {
    let workers = 2;
    let g = Dataset::WebSt.generate_over_budget();
    assert!(
        g.adjacency_bytes() >= OOC_DEMO_BUDGET * OOC_OVERCOMMIT,
        "preset must overcommit the budget"
    );
    let program = HopFlood { lanes: 4 };
    let run = || {
        let cfg = paged_config(
            workers,
            OOC_DEMO_BUDGET,
            OOC_DEMO_BUDGET / 8,
            PartitionSchedule::RoundRobin,
            p.store,
        );
        let runner = Runner::new(&g, &HashPartitioner::default(), cfg);
        assert!(runner.paged_layout().is_some(), "paging must engage");
        runner.run_slab(&program)
    };
    let a = run();
    let b = run();
    assert!(a.outcome.is_completed(), "over-budget run must complete");
    assert_eq!(a.stats, b.stats, "paged runs must be deterministic");
    assert_eq!(a.states, b.states, "paged results must be deterministic");
    let peak = a.stats.peak_paged_resident_bytes.get();
    assert!(
        peak <= OOC_DEMO_BUDGET,
        "cache peak {peak} B exceeded the {OOC_DEMO_BUDGET} B budget"
    );
    assert!(peak > 0, "ledger never observed a resident partition");
    assert!(
        a.stats.total_loaded_bytes.get() > g.adjacency_bytes(),
        "an over-budget run must re-stream evicted partitions \
         (loaded {} B vs adjacency {} B)",
        a.stats.total_loaded_bytes.get(),
        g.adjacency_bytes()
    );
    OverBudget {
        adjacency_bytes: g.adjacency_bytes(),
        budget: OOC_DEMO_BUDGET,
        peak_resident: peak,
        loaded_bytes: a.stats.total_loaded_bytes.get(),
        partition_loads: a.stats.total_partition_loads,
        spilled_bytes: a.stats.total_spilled_bytes.get(),
        rounds: a.stats.rounds,
    }
}

// ---------------------------------------------------------------------
// Experiment 2: frontier-density vs round-robin on a shrinking frontier.
// ---------------------------------------------------------------------

struct ScheduleCell {
    loaded_bytes: u64,
    partition_loads: u64,
    partitions_skipped: u64,
    peak_resident: u64,
    rounds: usize,
    rounds_per_sec: f64,
}

fn timed_schedule(
    g: &Graph,
    p: &Params,
    schedule: PartitionSchedule,
) -> (ScheduleCell, RunStats, Vec<Vec<u64>>) {
    let program = HopFlood { lanes: 1 };
    let run = || {
        let cfg = paged_config(4, p.ring_budget, p.ring_partition, schedule, p.store);
        Runner::new(g, &HashPartitioner::default(), cfg).run_slab(&program)
    };
    // Warm-up + determinism pin, untimed.
    let first = run();
    assert!(first.outcome.is_completed(), "{schedule:?} must complete");
    let mut best = 0.0f64;
    for _ in 0..p.reps {
        let t = Instant::now();
        let r = run();
        let dt = t.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(r.stats, first.stats, "{schedule:?} must be deterministic");
        best = best.max(r.stats.rounds as f64 / dt);
    }
    let cell = ScheduleCell {
        loaded_bytes: first.stats.total_loaded_bytes.get(),
        partition_loads: first.stats.total_partition_loads,
        partitions_skipped: first.stats.total_partitions_skipped,
        peak_resident: first.stats.peak_paged_resident_bytes.get(),
        rounds: first.stats.rounds,
        rounds_per_sec: best,
    };
    let states = first.states.clone();
    (cell, first.stats, states)
}

fn frontier_scheduling(p: &Params) -> (ScheduleCell, ScheduleCell) {
    let g = generators::ring(p.ring, false);
    let (rr, rr_stats, rr_states) = timed_schedule(&g, p, PartitionSchedule::RoundRobin);
    let (fd, fd_stats, fd_states) = timed_schedule(&g, p, PartitionSchedule::FrontierDensity);

    // Identical compute: same rounds, same traffic, same results.
    assert_eq!(rr_stats.rounds, fd_stats.rounds);
    assert_eq!(rr_stats.total_messages_sent, fd_stats.total_messages_sent);
    assert_eq!(rr_states, fd_states, "schedules must not change results");

    assert_eq!(rr.partitions_skipped, 0, "round-robin never skips");
    assert!(
        fd.partitions_skipped > 0,
        "frontier-density must skip empty-frontier partitions"
    );
    assert!(
        fd.loaded_bytes < rr.loaded_bytes,
        "frontier-density must move strictly fewer bytes \
         ({} vs {})",
        fd.loaded_bytes,
        rr.loaded_bytes
    );
    for (name, cell) in [("round-robin", &rr), ("frontier-density", &fd)] {
        assert!(
            cell.peak_resident <= p.ring_budget,
            "{name} cache peak {} B exceeded the {} B budget",
            cell.peak_resident,
            p.ring_budget
        );
    }
    if p.strict {
        assert!(
            fd.rounds_per_sec >= 1.2 * rr.rounds_per_sec,
            "frontier-density must clear 1.2x round-robin on the \
             shrinking-frontier phase ({:.0} vs {:.0} rounds/s)",
            fd.rounds_per_sec,
            rr.rounds_per_sec
        );
    }
    (rr, fd)
}

fn json_schedule(name: &str, c: &ScheduleCell) -> String {
    format!(
        "    \"{name}\": {{\"loaded_bytes\": {}, \"partition_loads\": {}, \
         \"partitions_skipped\": {}, \"peak_resident_bytes\": {}, \
         \"rounds\": {}, \"rounds_per_sec\": {:.1}}}",
        c.loaded_bytes,
        c.partition_loads,
        c.partitions_skipped,
        c.peak_resident,
        c.rounds,
        c.rounds_per_sec,
    )
}

fn main() {
    let p = Params::from_env();

    let ob = over_budget(&p);
    println!(
        "over-budget: adjacency {} B through a {} B cache — peak resident {} B, \
         {} loads / {} B streamed, {} B spilled, {} rounds",
        ob.adjacency_bytes,
        ob.budget,
        ob.peak_resident,
        ob.partition_loads,
        ob.loaded_bytes,
        ob.spilled_bytes,
        ob.rounds,
    );

    let (rr, fd) = frontier_scheduling(&p);
    println!(
        "ring {}: round-robin {} B loaded ({} loads), frontier-density {} B \
         ({} loads, {} skips) — {:.2}x bytes saved, {:.2}x rounds/s",
        p.ring,
        rr.loaded_bytes,
        rr.partition_loads,
        fd.loaded_bytes,
        fd.partition_loads,
        fd.partitions_skipped,
        rr.loaded_bytes as f64 / fd.loaded_bytes.max(1) as f64,
        fd.rounds_per_sec / rr.rounds_per_sec.max(1e-9),
    );

    let json = format!(
        "{{\n  \"bench\": \"pr10_out_of_core\",\n  \"seed\": {SEED},\n  \
         \"store\": \"{}\",\n  \
         \"over_budget\": {{\"adjacency_bytes\": {}, \"budget_bytes\": {}, \
         \"peak_resident_bytes\": {}, \"loaded_bytes\": {}, \
         \"partition_loads\": {}, \"spilled_bytes\": {}, \"rounds\": {}}},\n  \
         \"frontier\": {{\"ring\": {}, \"budget_bytes\": {}, \
         \"partition_bytes\": {},\n{},\n{}\n  }}\n}}\n",
        match p.store {
            StoreKind::Memory => "memory",
            StoreKind::TempFile => "tempfile",
        },
        ob.adjacency_bytes,
        ob.budget,
        ob.peak_resident,
        ob.loaded_bytes,
        ob.partition_loads,
        ob.spilled_bytes,
        ob.rounds,
        p.ring,
        p.ring_budget,
        p.ring_partition,
        json_schedule("round_robin", &rr),
        json_schedule("frontier_density", &fd),
    );
    let mut f = std::fs::File::create("BENCH_pr10.json").expect("create BENCH_pr10.json");
    f.write_all(json.as_bytes()).expect("write BENCH_pr10.json");
    println!("-> BENCH_pr10.json");
}
