//! PR 8 perf snapshot: fold-at-send pre-sharded outboxes + lane-batched
//! BKHS/BPPR kernels. Emits `BENCH_pr8.json` in the working directory.
//!
//! Three cell families, same graph/partition setup as `bench_pr5`/`pr7`:
//!
//! * `bkhs_{scalar,lane}_w{W}` — [`BkhsSlabProgram`] vs
//!   [`BkhsLaneSlabProgram`] (one envelope absorbs eight query lanes'
//!   hop sets), W ∈ {8, 64}, combiner on. Same policy both sides, so
//!   the timing delta isolates lane batching; rounds and `sent_wire`
//!   are pinned equal.
//! * `bppr_push_{scalar,lane}_w64` — [`BpprPushSlabProgram`] vs
//!   [`BpprPushLaneSlabProgram`] (one broadcast forwards eight query
//!   lanes' residues), combiner on, pinned the same way.
//! * `mssp_{flat,presharded}_combine_w16` — the recycled-slab MSSP
//!   combining workload on the flat two-stage routing path
//!   ([`drive_core_policy`]) vs the fold-at-send pre-sharded path
//!   ([`drive_core_presharded`]). Everything except
//!   `shard_copy_bytes` is pinned equal; the headline
//!   `presharded_copy_reduction` key is the fraction of shard-stage
//!   envelope copies the pre-sharded path never performs, and its
//!   steady-state allocation must stay at the 0 B/round the slab +
//!   recycled-buffer stack established.
//!
//! Timing/allocation mechanics are the shared [`mtvc_bench::measure`]
//! harness (interleaved best-of-reps, counting global allocator).
//!
//! `PR8_SMOKE=1` shrinks the graph and rep count for CI: all asserts
//! still run end to end, the timings are not meaningful.

use mtvc_bench::measure::{measure_all_rounds, measure_interleaved, CountingAlloc, Measurement};
use mtvc_bench::round_loop::{drive_core_policy, drive_core_presharded, PolicyReport};
use mtvc_engine::{LocalIndex, PerSlab, RoutePolicy, SlabProgram, SlabRecycler};
use mtvc_graph::partition::Partition;
use mtvc_graph::partition::{HashPartitioner, Partitioner};
use mtvc_graph::{generators, Graph, VertexId};
use mtvc_tasks::bppr::SourceSet;
use mtvc_tasks::{
    BkhsLaneSlabProgram, BkhsSlabProgram, BpprPushLaneSlabProgram, BpprPushSlabProgram,
    MsspSlabProgram,
};
use std::io::Write;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const WORKERS: usize = 4;
const SEED: u64 = 0x9E3;
/// Hop bound for the BKHS cells.
const BKHS_K: u32 = 8;
/// Batch widths swept on BKHS (queries per batch).
const BKHS_WIDTHS: [usize; 2] = [8, 64];

struct Params {
    vertices: usize,
    edges: usize,
    /// Timed repetitions per cell (single-threaded full runs).
    reps: usize,
}

impl Params {
    fn from_env() -> Params {
        if std::env::var("PR8_SMOKE").is_ok_and(|v| v == "1") {
            Params {
                vertices: 4_000,
                edges: 16_000,
                reps: 1,
            }
        } else {
            Params {
                vertices: 20_000,
                edges: 80_000,
                reps: 5,
            }
        }
    }
}

struct CellResult {
    report: PolicyReport,
    rounds_per_sec: f64,
}

fn measure_all(reps: usize, drivers: &[&dyn Fn() -> PolicyReport]) -> Vec<CellResult> {
    measure_interleaved(reps, drivers)
        .into_iter()
        .map(|(report, best)| CellResult {
            report,
            rounds_per_sec: report.report.rounds as f64 / best,
        })
        .collect()
}

fn run_slab<P: SlabProgram>(
    program: &P,
    g: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    combine: bool,
    policy: &RoutePolicy,
) -> PolicyReport {
    drive_core_policy(
        &PerSlab::new(program),
        g,
        part,
        locals,
        combine,
        policy,
        SEED,
        |_| {},
    )
}

fn json_cell(name: &str, r: &PolicyReport, rounds_per_sec: f64) -> String {
    format!(
        "    \"{name}\": {{\"rounds\": {}, \"sent_wire\": {}, \"delivered_tuples\": {}, \
         \"rounds_per_sec\": {rounds_per_sec:.2}, \"shard_copy_bytes\": {}}}",
        r.report.rounds, r.report.sent_wire, r.report.delivered_tuples, r.shard_copy_bytes,
    )
}

/// Pin a lane cell to its scalar sibling: lane batching conserves
/// rounds and pre-fold wire units exactly.
fn assert_lane_parity(name: &str, scalar: &CellResult, lane: &CellResult) {
    assert_eq!(
        lane.report.report.rounds, scalar.report.report.rounds,
        "{name} round parity"
    );
    assert_eq!(
        lane.report.report.sent_wire, scalar.report.report.sent_wire,
        "{name} wire parity"
    );
}

fn main() {
    let params = Params::from_env();
    let g = generators::power_law(params.vertices, params.edges, 2.3, 42);
    let part = HashPartitioner::default().partition(&g, WORKERS);
    let locals = LocalIndex::build(&part);
    let policy = RoutePolicy::default();

    let mut cells: Vec<String> = Vec::new();
    let mut summary: Vec<String> = Vec::new();

    // BKHS: scalar vs lane hop-set absorption.
    for width in BKHS_WIDTHS {
        let sources: Vec<VertexId> = (0..width as u32)
            .map(|q| (q * 997) % params.vertices as VertexId)
            .collect();
        let scalar_prog = BkhsSlabProgram::new(sources.clone(), BKHS_K);
        let lane_prog = BkhsLaneSlabProgram::new(sources, BKHS_K);
        let scalar_d = || run_slab(&scalar_prog, &g, &part, &locals, true, &policy);
        let lane_d = || run_slab(&lane_prog, &g, &part, &locals, true, &policy);
        let mut results = measure_all(params.reps, &[&scalar_d, &lane_d]);
        let lane = results.pop().expect("lane");
        let scalar = results.pop().expect("scalar");
        assert_lane_parity(&format!("bkhs w{width}"), &scalar, &lane);
        let speedup = lane.rounds_per_sec / scalar.rounds_per_sec;
        println!(
            "bkhs_w{width}: lane {:.1} rounds/s vs scalar {:.1} rounds/s ({speedup:.2}x)",
            lane.rounds_per_sec, scalar.rounds_per_sec
        );
        cells.push(json_cell(
            &format!("bkhs_scalar_w{width}"),
            &scalar.report,
            scalar.rounds_per_sec,
        ));
        cells.push(json_cell(
            &format!("bkhs_lane_w{width}"),
            &lane.report,
            lane.rounds_per_sec,
        ));
        summary.push(format!("  \"lane_bkhs_speedup_w{width}\": {speedup:.3}"));
    }

    // BPPR forward push: scalar vs lane residue forwarding, W=64.
    {
        let sources: Vec<VertexId> = (0..64u32)
            .map(|s| (s * 613) % params.vertices as VertexId)
            .collect();
        let scalar_prog = BpprPushSlabProgram::new(64, 0.2, g.num_vertices())
            .with_sources(SourceSet::subset(sources.clone()));
        let lane_prog = BpprPushLaneSlabProgram::new(64, 0.2, g.num_vertices())
            .with_sources(SourceSet::subset(sources));
        let scalar_d = || run_slab(&scalar_prog, &g, &part, &locals, true, &policy);
        let lane_d = || run_slab(&lane_prog, &g, &part, &locals, true, &policy);
        let mut results = measure_all(params.reps, &[&scalar_d, &lane_d]);
        let lane = results.pop().expect("lane");
        let scalar = results.pop().expect("scalar");
        assert_lane_parity("bppr push w64", &scalar, &lane);
        let speedup = lane.rounds_per_sec / scalar.rounds_per_sec;
        println!(
            "bppr_push_w64: lane {:.1} rounds/s vs scalar {:.1} rounds/s ({speedup:.2}x)",
            lane.rounds_per_sec, scalar.rounds_per_sec
        );
        cells.push(json_cell(
            "bppr_push_scalar_w64",
            &scalar.report,
            scalar.rounds_per_sec,
        ));
        cells.push(json_cell(
            "bppr_push_lane_w64",
            &lane.report,
            lane.rounds_per_sec,
        ));
        summary.push(format!("  \"lane_bppr_speedup_w64\": {speedup:.3}"));
    }

    // MSSP combining: flat two-stage routing vs fold-at-send
    // pre-sharded routing, recycled slabs (the production steady
    // state — these two cells also carry the allocation profile).
    {
        let sources: Vec<VertexId> = (0..16u32)
            .map(|q| (q * 997) % params.vertices as VertexId)
            .collect();
        let prog = MsspSlabProgram::new(sources);
        let recycler: SlabRecycler<u64> = SlabRecycler::new();
        let flat_core = PerSlab::with_recycler(&prog, &recycler);
        let flat_d = |hook: &mut dyn FnMut(usize)| {
            drive_core_policy(&flat_core, &g, &part, &locals, true, &policy, SEED, hook)
        };
        let pre_d = |hook: &mut dyn FnMut(usize)| {
            drive_core_presharded(&flat_core, &g, &part, &locals, true, &policy, SEED, hook)
        };
        let mut results = measure_all_rounds(params.reps, &[&flat_d, &pre_d]);
        let pre: Measurement<PolicyReport> = results.pop().expect("presharded");
        let flat: Measurement<PolicyReport> = results.pop().expect("flat");

        // Fold-at-send changes where combining happens, not what is
        // sent: everything but the copy counter is pinned equal.
        assert_eq!(flat.report.report, pre.report.report, "presharded parity");
        assert_eq!(
            flat.report.encoded_wire_bytes,
            pre.report.encoded_wire_bytes
        );
        assert_eq!(
            flat.report.estimated_wire_bytes,
            pre.report.estimated_wire_bytes
        );
        assert!(
            pre.report.shard_copy_bytes < flat.report.shard_copy_bytes,
            "presharded must shrink shard-stage copies: {} vs {}",
            pre.report.shard_copy_bytes,
            flat.report.shard_copy_bytes
        );
        assert_eq!(
            pre.steady_bytes_per_round, 0,
            "presharded path must preserve 0 B steady-state rounds"
        );

        let copy_reduction =
            1.0 - pre.report.shard_copy_bytes as f64 / flat.report.shard_copy_bytes as f64;
        let flat_rps = flat.report.report.rounds as f64 / flat.best_secs;
        let pre_rps = pre.report.report.rounds as f64 / pre.best_secs;
        println!(
            "mssp_combine_w16: presharded {pre_rps:.1} rounds/s vs flat {flat_rps:.1} rounds/s \
             ({:.2}x), shard copies {}B vs {}B (-{:.0}%), steady alloc/round {} vs {} bytes",
            pre_rps / flat_rps,
            pre.report.shard_copy_bytes,
            flat.report.shard_copy_bytes,
            copy_reduction * 100.0,
            pre.steady_bytes_per_round,
            flat.steady_bytes_per_round,
        );
        cells.push(json_cell("mssp_flat_combine_w16", &flat.report, flat_rps));
        cells.push(json_cell(
            "mssp_presharded_combine_w16",
            &pre.report,
            pre_rps,
        ));
        summary.push(format!(
            "  \"presharded_copy_reduction\": {copy_reduction:.3}"
        ));
        summary.push(format!(
            "  \"presharded_speedup\": {:.3}",
            pre_rps / flat_rps
        ));
        summary.push(format!(
            "  \"presharded_steady_bytes_per_round\": {}",
            pre.steady_bytes_per_round
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"pr8_presharded_lanes\",\n  \"graph\": {{\"vertices\": {}, \
         \"edges\": {}, \"workers\": {WORKERS}}},\n  \"reps\": {},\n{},\n  \
         \"cells\": {{\n{}\n  }}\n}}\n",
        params.vertices,
        params.edges,
        params.reps,
        summary.join(",\n"),
        cells.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_pr8.json").expect("create BENCH_pr8.json");
    f.write_all(json.as_bytes()).expect("write BENCH_pr8.json");
    println!("-> BENCH_pr8.json");
}
