//! Calibration probe: verify the paper's headline phenomena emerge at
//! the default scales before the figure benches are trusted.
//!
//! Prints, for the Figure 4 setting (BPPR on DBLP, Galaxy-8), the
//! time/memory/congestion of each (workload, batches) cell, so the
//! cost-model constants can be tuned until:
//!   * W=1024  → 1-batch optimal,
//!   * W=10240 → 2-batch optimal (1-batch thrashes),
//!   * W=12288 → 4-batch optimal (1-batch overflows).

use mtvc_bench::{run_cell, PaperTask, ScaledDataset};
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Dataset;
use mtvc_metrics::{row, Table};
use mtvc_systems::SystemKind;

fn main() {
    let sd = ScaledDataset::load(Dataset::Dblp);
    let cluster = sd.cluster(ClusterSpec::galaxy8());
    println!(
        "DBLP-like: n={} m={} scale={}  machine mem={} usable={}",
        sd.graph.num_vertices(),
        sd.graph.num_edges(),
        sd.scale,
        cluster.machine.memory,
        cluster.machine.usable_memory()
    );
    let mut t = Table::new(
        "calibration: BPPR on DBLP @ Galaxy-8",
        &[
            "W",
            "batches",
            "outcome",
            "peak_mem",
            "msg/round(M)",
            "rounds",
            "thrash?",
        ],
    );
    for &w in &[1024u64, 4096, 10240, 12288] {
        for &b in &[1usize, 2, 4, 8] {
            let r = run_cell(&sd, &cluster, SystemKind::PregelPlus, PaperTask::Bppr(w), b);
            t.row(row!(
                w,
                b,
                r.outcome,
                r.stats.peak_memory,
                format!("{:.2}", r.stats.congestion() / 1.0e6),
                r.stats.rounds,
                format!(
                    "{:.2}",
                    r.stats
                        .per_round
                        .iter()
                        .map(|x| x.duration.as_secs())
                        .fold(0.0, f64::max)
                )
            ));
        }
    }
    t.print();
}
