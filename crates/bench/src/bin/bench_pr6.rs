//! PR 6 serving snapshot: the SLO-aware scheduler vs the baseline DRR
//! former under generated production traffic, swept across offered
//! load. Emits `BENCH_serve.json` in the working directory.
//!
//! One deterministic loadgen scenario (Zipf tenants, diurnal cycle,
//! correlated bursts, mixed MSSP/BPPR/BKHS shapes, 3 SLO classes) is
//! replayed open-loop at three time scales — 1.0× is the nominal
//! rate, smaller scales compress the same arrivals into less wall
//! time, raising the offered rate. Each (load, scheduler) cell runs a
//! fresh service; the report's per-class sections provide throughput,
//! p50/p99/p999 latency, deadline hits, in-queue expiries, and shed
//! counts per class.
//!
//! Asserted invariants (both modes):
//! * the same seed regenerates a bit-identical trace (fingerprint);
//! * offered = submitted + shed + refused for every cell;
//! * at the highest common load the SLO-aware scheduler meets at
//!   least as many Interactive deadlines as the baseline — in full
//!   mode, *strictly more* (wall-clock dependent, so the smoke run
//!   only requires parity).
//!
//! `PR6_SMOKE=1` shrinks the trace and skips the strictness assert
//! for CI; the accounting asserts still run end to end.

use mtvc_cluster::ClusterSpec;
use mtvc_core::Task;
use mtvc_graph::generators;
use mtvc_loadgen::{drive, generate, ClassMix, DriveCfg, DriveReport, Scenario, Trace};
use mtvc_metrics::Histogram;
use mtvc_serve::{SchedulerPolicy, ServiceConfig, ServiceReport, SloClass, TaskService};
use mtvc_systems::SystemKind;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x6E55;

struct Params {
    /// Trace length at time scale 1.0.
    duration: Duration,
    /// Baseline arrival rate (requests/s) at time scale 1.0.
    base_rate: f64,
    /// Tenant population.
    tenants: u32,
    /// Time scales swept, descending (smaller = higher offered rate).
    scales: Vec<f64>,
    /// Whether the Interactive-deadline win must be strict.
    strict: bool,
}

impl Params {
    fn from_env() -> Params {
        if std::env::var("PR6_SMOKE").is_ok_and(|v| v == "1") {
            Params {
                duration: Duration::from_millis(400),
                base_rate: 150.0,
                tenants: 60,
                scales: vec![1.0, 0.5, 0.2],
                strict: false,
            }
        } else {
            Params {
                duration: Duration::from_secs(2),
                base_rate: 400.0,
                tenants: 400,
                scales: vec![1.0, 0.3, 0.05],
                strict: true,
            }
        }
    }
}

fn scenario(p: &Params) -> Scenario {
    Scenario::new("pr6-production", p.tenants, p.base_rate, p.duration)
        .with_zipf_exponent(1.1)
        .with_diurnal(p.duration / 2, 0.5)
        .with_bursts(Duration::from_millis(300), Duration::from_millis(120), 2.5)
        .with_shape(Task::mssp(1), 2.0, 1..=4)
        .with_shape(Task::bppr(1), 1.5, 2..=8)
        .with_shape(Task::bkhs(1), 0.5, 1..=2)
        .with_classes(ClassMix {
            weights: [0.15, 0.55, 0.3],
            deadlines: [
                // Tight enough that queueing at the top of the sweep
                // costs deadlines; the scheduler has to earn them.
                Some(Duration::from_millis(50)),
                Some(Duration::from_secs(1)),
                None,
            ],
        })
}

fn service(scheduler: SchedulerPolicy) -> TaskService {
    let graph = Arc::new(generators::power_law(300, 1400, 2.4, 11));
    // One worker: the bench container is single-core, so inter-batch
    // concurrency cannot add throughput — with one worker the joint
    // controller's narrow end leaves the batch cap at the full
    // headroom and the comparison isolates pure scheduling (EDF,
    // class weights, deadline-sized batches).
    let mut cfg = ServiceConfig::new(SystemKind::PregelPlus, ClusterSpec::galaxy(4))
        .with_workers(1)
        .with_quantum(16)
        .with_queue_capacity(512)
        .with_seed(SEED)
        .with_scheduler(scheduler)
        .with_shape(Task::mssp(1))
        .with_shape(Task::bppr(1))
        .with_shape(Task::bkhs(1));
    cfg.training_workload = 64;
    TaskService::start(graph, cfg).expect("service starts")
}

struct Cell {
    scale: f64,
    scheduler: SchedulerPolicy,
    offered: u64,
    drive: DriveReport,
    report: ServiceReport,
}

fn quantiles(h: &Histogram) -> String {
    let (p50, p99, p999) = h.p50_p99_p999();
    format!("\"p50_us\": {p50}, \"p99_us\": {p99}, \"p999_us\": {p999}")
}

fn json_cell(c: &Cell) -> String {
    let r = &c.report;
    let elapsed = c.drive.wall.as_secs_f64().max(f64::MIN_POSITIVE);
    let mut classes = Vec::new();
    for class in SloClass::ALL {
        let cr = r.class(class);
        classes.push(format!(
            "      \"{}\": {{\"served\": {}, \"throughput_rps\": {:.1}, \
             \"deadline_met\": {}, \"deadline_missed\": {}, \
             \"expired_in_queue\": {}, \"shed\": {}, {}, \
             \"expired_wait_p99_us\": {}}}",
            class.label(),
            cr.served,
            cr.served as f64 / elapsed,
            cr.deadline_met,
            cr.deadline,
            cr.expired_in_queue,
            c.drive.shed_by_class[class.index()],
            quantiles(&cr.latency),
            cr.expired_wait.quantile(0.99),
        ));
    }
    format!(
        "    \"scale_{:.2}_{}\": {{\n      \"offered\": {}, \"submitted\": {}, \
         \"shed\": {}, \"served\": {}, \"batches\": {}, \
         \"mean_batch_workload\": {:.1}, \"queue_depth_twa\": {:.1}, \
         \"max_queue_depth\": {}, \"controller\": {{\"decisions\": {}, \
         \"narrowed\": {}, \"widened\": {}, \"deadline_capped\": {}}},\n\
         {}\n    }}",
        c.scale,
        c.scheduler.label(),
        c.offered,
        c.drive.submitted,
        c.drive.shed,
        r.served,
        r.batches,
        r.batch_workload.mean(),
        r.queue_depth_series.time_weighted_mean(),
        r.max_queue_depth,
        r.controller.decisions,
        r.controller.narrowed,
        r.controller.widened,
        r.controller.deadline_capped,
        classes.join(",\n"),
    )
}

fn main() {
    let params = Params::from_env();
    let scen = scenario(&params);

    // Determinism gate: the same seed must regenerate the identical
    // trace, byte for byte.
    let trace: Trace = generate(&scen, SEED);
    let again = generate(&scen, SEED);
    assert_eq!(
        trace.fingerprint(),
        again.fingerprint(),
        "trace generation must be deterministic"
    );
    assert_eq!(trace, again);
    println!(
        "trace: {} events over {:.2}s, fingerprint {:#018x}, classes {:?}",
        trace.len(),
        trace.span().as_secs_f64(),
        trace.fingerprint(),
        trace.class_counts()
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &scale in &params.scales {
        for scheduler in [SchedulerPolicy::BaselineDrr, SchedulerPolicy::SloAware] {
            let svc = service(scheduler);
            let rep = drive(&svc, &trace, DriveCfg::default().with_time_scale(scale));
            let report = svc.shutdown();
            assert_eq!(
                rep.offered(),
                trace.len() as u64,
                "open-loop accounting: every event offered exactly once"
            );
            assert_eq!(rep.refused, 0, "no event should be refused outright");
            assert_eq!(
                report.requests(),
                rep.submitted,
                "accepted requests all reach a terminal outcome"
            );
            let i = report.class(SloClass::Interactive);
            println!(
                "scale {scale:.2} {:>12}: served {:>5}, shed {:>4}, \
                 interactive met {:>4} missed {:>4} (p99 {} us) \
                 [batches {} mean_w {:.1} ctl n{}/w{}/d{}]",
                scheduler.label(),
                report.served,
                rep.shed,
                i.deadline_met,
                i.deadline,
                i.latency.quantile(0.99),
                report.batches,
                report.batch_workload.mean(),
                report.controller.narrowed,
                report.controller.widened,
                report.controller.deadline_capped,
            );
            cells.push(Cell {
                scale,
                scheduler,
                offered: trace.len() as u64,
                drive: rep,
                report,
            });
        }
    }

    // Headline: at the highest common load (smallest scale), the
    // SLO-aware scheduler keeps more Interactive deadlines.
    let top = *params.scales.last().unwrap();
    let met = |policy: SchedulerPolicy| {
        cells
            .iter()
            .find(|c| c.scale == top && c.scheduler == policy)
            .map(|c| {
                let i = c.report.class(SloClass::Interactive);
                // A shed interactive request is a miss the queue never
                // even saw; count it against the scheduler too.
                (i.deadline_met, i.deadline + c.drive.shed_by_class[0])
            })
            .unwrap()
    };
    let (base_met, base_missed) = met(SchedulerPolicy::BaselineDrr);
    let (slo_met, slo_missed) = met(SchedulerPolicy::SloAware);
    println!(
        "headline @ scale {top:.2}: interactive deadlines met {slo_met} \
         (missed {slo_missed}) slo-aware vs {base_met} (missed {base_missed}) baseline"
    );
    if params.strict {
        assert!(
            slo_met > base_met,
            "SLO-aware must meet strictly more Interactive deadlines at the \
             highest load ({slo_met} vs {base_met})"
        );
    } else {
        assert!(
            slo_met >= base_met,
            "SLO-aware fell behind baseline on Interactive deadlines \
             ({slo_met} vs {base_met})"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"pr6_slo_serving\",\n  \"seed\": {SEED},\n  \
         \"trace\": {{\"events\": {}, \"fingerprint\": \"{:#018x}\", \
         \"tenants\": {}, \"base_rate_rps\": {:.1}, \"duration_s\": {:.2}}},\n  \
         \"scales\": {:?},\n  \"headline\": {{\"interactive_met_slo_aware\": {slo_met}, \
         \"interactive_met_baseline\": {base_met}, \
         \"interactive_missed_slo_aware\": {slo_missed}, \
         \"interactive_missed_baseline\": {base_missed}}},\n  \"cells\": {{\n{}\n  }}\n}}\n",
        trace.len(),
        trace.fingerprint(),
        params.tenants,
        params.base_rate,
        params.duration.as_secs_f64(),
        params.scales,
        cells.iter().map(json_cell).collect::<Vec<_>>().join(",\n"),
    );
    let mut f = std::fs::File::create("BENCH_serve.json").expect("create BENCH_serve.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_serve.json");
    println!("-> BENCH_serve.json");
}
