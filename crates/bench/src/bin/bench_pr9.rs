//! PR 9 robustness snapshot: degraded-mode serving under sustained
//! chaos. Emits `BENCH_chaos.json` in the working directory.
//!
//! Two experiments:
//!
//! 1. **Checkpoint bytes** (engine level): a sparse-wavefront slab
//!    workload on a grid, run with full snapshots vs incremental
//!    deltas at the same cadence under the same fault plan. The
//!    headline invariant — asserted, not just reported — is that
//!    incremental checkpoints store *strictly fewer* bytes than full
//!    snapshots while recovering bit-identically (the engine's own
//!    tests pin bit-identity; here the byte ledger is the product).
//!
//! 2. **Brownout ladder under load** (serve level): the PR 6 loadgen
//!    scenario replayed against a chaos-injected service, swept across
//!    fault rates, with the brownout ladder off vs on. Per cell:
//!    Interactive deadline attainment, recovery-latency p50/p99
//!    (simulated ms per faulted batch), corruption/retransmission
//!    counters, and the ladder's own transition statistics. At the top
//!    fault rate the ladder must meet at least as many Interactive
//!    deadlines as the no-ladder baseline — in full mode *strictly
//!    more* (wall-clock dependent, so `PR9_SMOKE=1` only requires
//!    parity).

use mtvc_cluster::{ChaosMix, ClusterSpec, FaultPlan};
use mtvc_core::Task;
use mtvc_engine::{
    Context, Delivery, EngineConfig, Message, Runner, SlabProgram, SlabRowMut, SystemProfile,
};
use mtvc_graph::generators;
use mtvc_graph::partition::HashPartitioner;
use mtvc_graph::VertexId;
use mtvc_loadgen::{drive, generate, ClassMix, DriveCfg, DriveReport, Scenario};
use mtvc_serve::{
    BrownoutCfg, SchedulerPolicy, ServiceConfig, ServiceReport, SloClass, TaskService,
};
use mtvc_systems::SystemKind;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xC4A5;

struct Params {
    /// Grid side for the checkpoint-bytes experiment.
    grid: usize,
    /// Trace length at time scale 1.0.
    duration: Duration,
    /// Baseline arrival rate (requests/s) at time scale 1.0.
    base_rate: f64,
    /// Tenant population.
    tenants: u32,
    /// Replay time scale (smaller = higher offered rate).
    scale: f64,
    /// Serving-graph size (vertices, edges): sets wall-clock batch cost.
    serve_graph: (usize, usize),
    /// Interactive deadline in milliseconds.
    deadline_ms: u64,
    /// Chaos-mix multipliers swept (0 = fault-free control).
    fault_rates: Vec<usize>,
    /// Whether the ladder's Interactive-deadline win must be strict.
    strict: bool,
}

impl Params {
    fn from_env() -> Params {
        if std::env::var("PR9_SMOKE").is_ok_and(|v| v == "1") {
            Params {
                grid: 12,
                duration: Duration::from_millis(400),
                base_rate: 150.0,
                tenants: 60,
                scale: 0.5,
                serve_graph: (300, 1400),
                deadline_ms: 50,
                fault_rates: vec![0, 2],
                strict: false,
            }
        } else {
            Params {
                grid: 24,
                duration: Duration::from_secs(2),
                base_rate: 400.0,
                tenants: 300,
                scale: 0.05,
                serve_graph: (1500, 8000),
                deadline_ms: 25,
                fault_rates: vec![0, 1, 3],
                strict: true,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Experiment 1: incremental vs full checkpoint bytes.
// ---------------------------------------------------------------------

/// Multi-lane hop flood over a state slab: lane `q` floods hop counts
/// from source vertex `q`. On a grid the active frontier is a thin
/// wavefront — exactly the sparse-touch regime incremental
/// checkpoints exist for.
struct WavefrontFlood {
    lanes: usize,
}

#[derive(Clone, Debug)]
struct Hop {
    lane: u16,
    dist: u64,
}

impl Message for Hop {
    fn combine_key(&self) -> Option<u64> {
        Some(u64::from(self.lane))
    }
    fn merge(&mut self, other: &Self) {
        self.dist = self.dist.min(other.dist);
    }
}

impl SlabProgram for WavefrontFlood {
    type Message = Hop;
    type Cell = u64;
    type Out = Vec<u64>;

    fn width(&self) -> usize {
        self.lanes
    }
    fn empty_cell(&self) -> u64 {
        u64::MAX
    }
    fn message_bytes(&self) -> u64 {
        12
    }

    fn init(&self, v: VertexId, mut row: SlabRowMut<'_, u64>, ctx: &mut Context<'_, Hop>) {
        if (v as usize) < self.lanes {
            let q = v as usize;
            row.relax_min(q, 0);
            for &t in ctx.neighbors() {
                ctx.send(
                    t,
                    Hop {
                        lane: q as u16,
                        dist: 1,
                    },
                    1,
                );
            }
        }
    }

    fn compute(
        &self,
        _v: VertexId,
        mut row: SlabRowMut<'_, u64>,
        inbox: &[Delivery<Hop>],
        ctx: &mut Context<'_, Hop>,
    ) {
        for d in inbox {
            row.relax_min(d.msg.lane as usize, d.msg.dist);
        }
        let mut improved = Vec::new();
        row.drain(|q, cell| improved.push((q, *cell)));
        for (q, dist) in improved {
            for &t in ctx.neighbors() {
                ctx.send(
                    t,
                    Hop {
                        lane: q as u16,
                        dist: dist + 1,
                    },
                    1,
                );
            }
        }
    }

    fn extract(&self, _v: VertexId, row: &[u64]) -> Vec<u64> {
        row.to_vec()
    }
}

struct CheckpointBytes {
    full_total: u64,
    incr_total: u64,
    per_full: u64,
    per_delta: u64,
    checkpoints: u64,
    delta_checkpoints: u64,
    replayed_rounds_full: u64,
    replayed_rounds_incr: u64,
}

fn checkpoint_bytes(p: &Params) -> CheckpointBytes {
    let g = generators::grid(p.grid, p.grid);
    let program = WavefrontFlood { lanes: 4 };
    let plan = FaultPlan::none()
        .with_crash(5, 1)
        .with_delivery_failure(9, 0);
    let config = || {
        EngineConfig::new(ClusterSpec::galaxy(4), SystemProfile::base("pr9"))
            .with_checkpoint_every(2)
            .with_faults(plan.clone())
    };
    let full = Runner::new(&g, &HashPartitioner::default(), config()).run_slab(&program);
    let incr = Runner::new(
        &g,
        &HashPartitioner::default(),
        config().with_incremental_checkpoints(4),
    )
    .run_slab(&program);
    assert_eq!(full.outcome, incr.outcome, "storage mode changed the run");
    assert_eq!(full.states, incr.states, "rollback must be bit-identical");
    let ff = &full.stats.faults;
    let fi = &incr.stats.faults;
    let full_total = ff.checkpoint_full_bytes.get() + ff.checkpoint_delta_bytes.get();
    let incr_total = fi.checkpoint_full_bytes.get() + fi.checkpoint_delta_bytes.get();
    assert!(
        incr_total < full_total,
        "incremental checkpoints must store strictly fewer bytes \
         ({incr_total} vs {full_total})"
    );
    assert!(fi.delta_checkpoints > 0, "no deltas were stored");
    CheckpointBytes {
        full_total,
        incr_total,
        per_full: ff.checkpoint_full_bytes.get() / ff.checkpoints.max(1),
        per_delta: fi.checkpoint_delta_bytes.get() / fi.delta_checkpoints.max(1),
        checkpoints: ff.checkpoints,
        delta_checkpoints: fi.delta_checkpoints,
        replayed_rounds_full: ff.replayed_rounds,
        replayed_rounds_incr: fi.replayed_rounds,
    }
}

// ---------------------------------------------------------------------
// Experiment 2: the brownout ladder under chaos + load.
// ---------------------------------------------------------------------

fn scenario(p: &Params) -> Scenario {
    Scenario::new("pr9-chaos", p.tenants, p.base_rate, p.duration)
        .with_zipf_exponent(1.1)
        .with_diurnal(p.duration / 2, 0.5)
        .with_bursts(Duration::from_millis(300), Duration::from_millis(120), 2.5)
        .with_shape(Task::mssp(1), 2.0, 1..=4)
        .with_shape(Task::bppr(1), 1.5, 2..=8)
        .with_classes(ClassMix {
            weights: [0.15, 0.45, 0.4],
            deadlines: [
                Some(Duration::from_millis(p.deadline_ms)),
                Some(Duration::from_secs(1)),
                None,
            ],
        })
}

/// The chaos schedule injected into every batch at `rate`: the base
/// mix scaled `rate`-fold. Rate 0 is the fault-free control.
fn chaos_plan(rate: usize) -> Option<FaultPlan> {
    if rate == 0 {
        return None;
    }
    let mix = ChaosMix {
        crashes: rate,
        losses: rate,
        stragglers: rate,
        partitions: rate.div_ceil(2),
        corruptions: rate,
    };
    Some(FaultPlan::chaos(SEED ^ 0x9C40, 4, 8, mix))
}

fn service(p: &Params, rate: usize, ladder: bool) -> TaskService {
    let (v, e) = p.serve_graph;
    let graph = Arc::new(generators::power_law(v, e, 2.4, 11));
    let mut cfg = ServiceConfig::new(SystemKind::PregelPlus, ClusterSpec::galaxy(4))
        .with_workers(1)
        .with_quantum(16)
        .with_queue_capacity(4096)
        .with_seed(SEED)
        .with_checkpoint_every(3)
        .with_scheduler(SchedulerPolicy::SloAware)
        .with_shape(Task::mssp(1))
        .with_shape(Task::bppr(1));
    cfg.training_workload = 64;
    if let Some(plan) = chaos_plan(rate) {
        cfg = cfg.with_chaos(plan);
    }
    if ladder {
        // The former ticks far more often than batches complete, so the
        // idle decay must be gentle and the breaker cooldown long, or
        // the ladder flickers instead of riding out the chaos window.
        cfg = cfg.with_brownout(BrownoutCfg {
            min_dwell: 4,
            breaker_threshold: 2,
            breaker_cooldown: 32,
            enter_score: 0.3,
            exit_score: 0.1,
            idle_decay: 0.98,
            ..BrownoutCfg::default()
        });
    }
    TaskService::start(graph, cfg).expect("service starts")
}

struct Cell {
    rate: usize,
    ladder: bool,
    drive: DriveReport,
    report: ServiceReport,
}

impl Cell {
    /// Interactive deadlines met / missed, counting shed submissions
    /// as misses the scheduler must answer for.
    fn interactive(&self) -> (u64, u64) {
        let i = self.report.class(SloClass::Interactive);
        (i.deadline_met, i.deadline + self.drive.shed_by_class[0])
    }
}

fn json_cell(c: &Cell) -> String {
    let r = &c.report;
    let (met, missed) = c.interactive();
    let (rp50, rp99, _) = r.recovery_latency.p50_p99_p999();
    let b = &r.brownout;
    format!(
        "    \"rate_{}_{}\": {{\"offered\": {}, \"submitted\": {}, \"shed\": {}, \
         \"served\": {}, \"failed\": {}, \"batches\": {}, \
         \"interactive_met\": {met}, \"interactive_missed\": {missed}, \
         \"faults_injected\": {}, \"replayed_rounds\": {}, \
         \"recovery_ms_p50\": {rp50}, \"recovery_ms_p99\": {rp99}, \
         \"corrupted_buckets\": {}, \"retransmitted_buckets\": {}, \
         \"retransmitted_bytes\": {}, \
         \"brownout\": {{\"enabled\": {}, \"transitions\": {}, \
         \"shed_iterations\": {}, \"breaker_opens\": {}, \"deepest_level\": {}}}}}",
        c.rate,
        if c.ladder { "ladder" } else { "baseline" },
        c.drive.offered(),
        c.drive.submitted,
        c.drive.shed,
        r.served,
        r.failed,
        r.batches,
        r.faults_injected,
        r.replayed_rounds,
        r.corrupted_buckets,
        r.retransmitted_buckets,
        r.retransmitted_bytes.get(),
        b.enabled,
        b.transitions,
        b.shed_iterations,
        b.breaker_opens,
        b.deepest_level,
    )
}

fn main() {
    let params = Params::from_env();

    let ckpt = checkpoint_bytes(&params);
    println!(
        "checkpoints: full {} B total ({} snapshots, {} B each) vs incremental {} B total \
         ({} deltas, {} B each); replayed {} / {} rounds",
        ckpt.full_total,
        ckpt.checkpoints,
        ckpt.per_full,
        ckpt.incr_total,
        ckpt.delta_checkpoints,
        ckpt.per_delta,
        ckpt.replayed_rounds_full,
        ckpt.replayed_rounds_incr,
    );

    let scen = scenario(&params);
    let trace = generate(&scen, SEED);
    assert_eq!(
        trace.fingerprint(),
        generate(&scen, SEED).fingerprint(),
        "trace generation must be deterministic"
    );
    println!(
        "trace: {} events over {:.2}s, fingerprint {:#018x}",
        trace.len(),
        trace.span().as_secs_f64(),
        trace.fingerprint()
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &rate in &params.fault_rates {
        for ladder in [false, true] {
            let svc = service(&params, rate, ladder);
            let rep = drive(
                &svc,
                &trace,
                DriveCfg::default().with_time_scale(params.scale),
            );
            // Drain the backlog while the service is live: shutdown
            // closes the queue, which lifts the brownout mask (so the
            // drain can never hang), and a closed-queue drain would
            // bypass the ladder for every still-queued request.
            let drain_start = std::time::Instant::now();
            while svc.queue_len() > 0 && drain_start.elapsed() < Duration::from_secs(120) {
                std::thread::sleep(Duration::from_millis(5));
            }
            let report = svc.shutdown();
            assert_eq!(rep.offered(), trace.len() as u64);
            assert_eq!(
                report.requests(),
                rep.submitted,
                "accepted requests all reach a terminal outcome"
            );
            if rate == 0 {
                assert_eq!(report.faults_injected, 0, "control cell must be fault-free");
            } else {
                assert!(report.faults_injected > 0, "chaos plan never fired");
            }
            let c = Cell {
                rate,
                ladder,
                drive: rep,
                report,
            };
            let (met, missed) = c.interactive();
            println!(
                "rate {rate} {:>8}: served {:>5}, interactive met {:>4} missed {:>4}, \
                 faults {:>4}, recovery p99 {} ms, brownout t{} s{} o{}",
                if ladder { "ladder" } else { "baseline" },
                c.report.served,
                met,
                missed,
                c.report.faults_injected,
                c.report.recovery_latency.quantile(0.99),
                c.report.brownout.transitions,
                c.report.brownout.shed_iterations,
                c.report.brownout.breaker_opens,
            );
            cells.push(c);
        }
    }

    // Headline: at the top fault rate the ladder protects Interactive
    // deadlines.
    let top = *params.fault_rates.last().unwrap();
    let met_of = |ladder: bool| {
        cells
            .iter()
            .find(|c| c.rate == top && c.ladder == ladder)
            .map(|c| c.interactive())
            .unwrap()
    };
    let (base_met, base_missed) = met_of(false);
    let (ladder_met, ladder_missed) = met_of(true);
    println!(
        "headline @ rate {top}: interactive met {ladder_met} (missed {ladder_missed}) \
         with ladder vs {base_met} (missed {base_missed}) baseline"
    );
    if params.strict {
        assert!(
            ladder_met > base_met,
            "the brownout ladder must meet strictly more Interactive deadlines \
             at the top fault rate ({ladder_met} vs {base_met})"
        );
    } else {
        assert!(
            ladder_met >= base_met,
            "the brownout ladder fell behind baseline on Interactive deadlines \
             ({ladder_met} vs {base_met})"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"pr9_chaos_serving\",\n  \"seed\": {SEED},\n  \
         \"checkpoints\": {{\"full_bytes_total\": {}, \"incremental_bytes_total\": {}, \
         \"bytes_per_full_snapshot\": {}, \"bytes_per_delta\": {}, \
         \"full_snapshots\": {}, \"delta_checkpoints\": {}}},\n  \
         \"trace\": {{\"events\": {}, \"fingerprint\": \"{:#018x}\", \
         \"tenants\": {}, \"base_rate_rps\": {:.1}, \"duration_s\": {:.2}, \
         \"time_scale\": {:.2}}},\n  \"fault_rates\": {:?},\n  \
         \"headline\": {{\"interactive_met_ladder\": {ladder_met}, \
         \"interactive_met_baseline\": {base_met}, \
         \"interactive_missed_ladder\": {ladder_missed}, \
         \"interactive_missed_baseline\": {base_missed}}},\n  \"cells\": {{\n{}\n  }}\n}}\n",
        ckpt.full_total,
        ckpt.incr_total,
        ckpt.per_full,
        ckpt.per_delta,
        ckpt.checkpoints,
        ckpt.delta_checkpoints,
        trace.len(),
        trace.fingerprint(),
        params.tenants,
        params.base_rate,
        params.duration.as_secs_f64(),
        params.scale,
        params.fault_rates,
        cells.iter().map(json_cell).collect::<Vec<_>>().join(",\n"),
    );
    let mut f = std::fs::File::create("BENCH_chaos.json").expect("create BENCH_chaos.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_chaos.json");
    println!("-> BENCH_chaos.json");
}
