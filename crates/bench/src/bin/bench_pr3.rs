//! PR 3 perf snapshot: rounds/sec and bytes-allocated-per-round for the
//! envelope hot path, current engine (sender combining + grouped
//! delivery) vs the pre-PR replica, on MSSP and BPPR with combining on
//! and off. Emits `BENCH_pr3.json` in the working directory, seeding
//! the perf trajectory for later PRs.
//!
//! Allocation is measured with a counting global allocator (wrapping
//! the system allocator — no external deps): `steady_bytes_per_round`
//! is the smallest per-round allocation delta observed after warm-up
//! rounds, i.e. what a round costs once every recycled buffer has
//! reached its high-water capacity. Task compute code may still
//! allocate (MSSP's receiver-side aggregation map, for instance) — the
//! number isolates what the *path* adds on top of the program itself.

use mtvc_bench::round_loop::{drive_current, drive_legacy, RoundLoopReport};
use mtvc_engine::{LocalIndex, VertexProgram};
use mtvc_graph::partition::{HashPartitioner, Partition, Partitioner};
use mtvc_graph::{generators, Graph, VertexId};
use mtvc_tasks::bppr::{BpprProgram, SourceSet};
use mtvc_tasks::mssp::MsspProgram;
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapper that counts every allocated byte
/// (allocations only — frees are not subtracted, so deltas measure
/// allocation *churn*, which is exactly what buffer recycling removes).
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count only the growth; shrinks are free.
        let grown = new_size.saturating_sub(layout.size());
        ALLOCATED.fetch_add(grown as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const VERTICES: usize = 20_000;
const EDGES: usize = 80_000;
const WORKERS: usize = 4;
const SEED: u64 = 0x9E3;
/// Timed repetitions per cell (single-threaded full runs).
const REPS: usize = 5;
/// Rounds skipped before the steady-state allocation window opens
/// (buffers are still growing toward their high-water marks).
const WARMUP_ROUNDS: usize = 3;

struct CellResult {
    report: RoundLoopReport,
    rounds_per_sec: f64,
    total_bytes_per_round: u64,
    steady_bytes_per_round: u64,
}

/// Time `REPS` full runs and measure one instrumented run's per-round
/// allocation profile.
fn measure<P: VertexProgram>(
    driver: impl Fn(
        &P,
        &Graph,
        &Partition,
        &LocalIndex,
        bool,
        u64,
        &mut dyn FnMut(usize),
    ) -> RoundLoopReport,
    program: &P,
    g: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    combine: bool,
) -> CellResult {
    // Warm-up + allocation profile: snapshot the byte counter at each
    // round boundary.
    let mut marks: Vec<u64> = Vec::with_capacity(64);
    let report = driver(program, g, part, locals, combine, SEED, &mut |_| {
        marks.push(ALLOCATED.load(Ordering::Relaxed));
    });
    let deltas: Vec<u64> = marks.windows(2).map(|w| w[1] - w[0]).collect();
    let steady = deltas
        .iter()
        .skip(WARMUP_ROUNDS.min(deltas.len().saturating_sub(1)))
        .copied()
        .min()
        .unwrap_or(0);

    let before = ALLOCATED.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..REPS {
        let r = driver(program, g, part, locals, combine, SEED, &mut |_| {});
        assert_eq!(r, report, "driver must be deterministic");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocated = ALLOCATED.load(Ordering::Relaxed) - before;
    let total_rounds = (report.rounds * REPS) as f64;
    CellResult {
        report,
        rounds_per_sec: total_rounds / elapsed,
        total_bytes_per_round: allocated / total_rounds as u64,
        steady_bytes_per_round: steady,
    }
}

fn json_cell(name: &str, r: &CellResult) -> String {
    format!(
        "    \"{name}\": {{\"rounds\": {}, \"sent_wire\": {}, \"delivered_tuples\": {}, \
         \"rounds_per_sec\": {:.2}, \"total_bytes_per_round\": {}, \
         \"steady_bytes_per_round\": {}}}",
        r.report.rounds,
        r.report.sent_wire,
        r.report.delivered_tuples,
        r.rounds_per_sec,
        r.total_bytes_per_round,
        r.steady_bytes_per_round,
    )
}

fn main() {
    let g = generators::power_law(VERTICES, EDGES, 2.3, 42);
    let part = HashPartitioner::default().partition(&g, WORKERS);
    let locals = LocalIndex::build(&part);
    let mssp = MsspProgram::new(
        (0..16u32)
            .map(|q| (q * 997) % VERTICES as VertexId)
            .collect(),
    );
    let bppr_sources: Vec<VertexId> = (0..256u32)
        .map(|s| (s * 613) % VERTICES as VertexId)
        .collect();
    let bppr = BpprProgram::new(8, 0.2).with_sources(SourceSet::subset(bppr_sources));

    let mut cells: Vec<String> = Vec::new();
    let mut mssp_combine_speedup = 0.0f64;
    for combine in [false, true] {
        let tag = if combine { "combine" } else { "nocombine" };
        let cur = measure(
            |p, g, pt, l, c, s, hook| drive_current(p, g, pt, l, c, s, hook),
            &mssp,
            &g,
            &part,
            &locals,
            combine,
        );
        let old = measure(
            |p, g, pt, l, c, s, hook| drive_legacy(p, g, pt, l, c, s, hook),
            &mssp,
            &g,
            &part,
            &locals,
            combine,
        );
        // Order-insensitive task: the two paths must agree exactly.
        assert_eq!(cur.report, old.report, "mssp parity ({tag})");
        let speedup = cur.rounds_per_sec / old.rounds_per_sec;
        if combine {
            mssp_combine_speedup = speedup;
        }
        println!(
            "mssp_{tag}: current {:.1} rounds/s vs legacy {:.1} rounds/s ({speedup:.2}x), \
             steady alloc/round {} vs {} bytes",
            cur.rounds_per_sec,
            old.rounds_per_sec,
            cur.steady_bytes_per_round,
            old.steady_bytes_per_round
        );
        cells.push(json_cell(&format!("mssp_current_{tag}"), &cur));
        cells.push(json_cell(&format!("mssp_legacy_{tag}"), &old));

        let cur = measure(
            |p, g, pt, l, c, s, hook| drive_current(p, g, pt, l, c, s, hook),
            &bppr,
            &g,
            &part,
            &locals,
            combine,
        );
        let old = measure(
            |p, g, pt, l, c, s, hook| drive_legacy(p, g, pt, l, c, s, hook),
            &bppr,
            &g,
            &part,
            &locals,
            combine,
        );
        println!(
            "bppr_{tag}: current {:.1} rounds/s vs legacy {:.1} rounds/s ({:.2}x), \
             steady alloc/round {} vs {} bytes",
            cur.rounds_per_sec,
            old.rounds_per_sec,
            cur.rounds_per_sec / old.rounds_per_sec,
            cur.steady_bytes_per_round,
            old.steady_bytes_per_round
        );
        cells.push(json_cell(&format!("bppr_current_{tag}"), &cur));
        cells.push(json_cell(&format!("bppr_legacy_{tag}"), &old));
    }

    let json = format!(
        "{{\n  \"bench\": \"pr3_round_loop\",\n  \"graph\": {{\"vertices\": {VERTICES}, \
         \"edges\": {EDGES}, \"workers\": {WORKERS}}},\n  \"reps\": {REPS},\n  \
         \"mssp_combine_speedup\": {mssp_combine_speedup:.3},\n  \"cells\": {{\n{}\n  }}\n}}\n",
        cells.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_pr3.json").expect("create BENCH_pr3.json");
    f.write_all(json.as_bytes()).expect("write BENCH_pr3.json");
    println!("mssp combine speedup: {mssp_combine_speedup:.2}x -> BENCH_pr3.json");
}
