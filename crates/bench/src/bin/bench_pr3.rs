//! PR 3 perf snapshot: rounds/sec and bytes-allocated-per-round for the
//! envelope hot path, current engine (sender combining + grouped
//! delivery) vs the pre-PR replica, on MSSP and BPPR with combining on
//! and off. Emits `BENCH_pr3.json` in the working directory, seeding
//! the perf trajectory for later PRs.
//!
//! Allocation is measured with a counting global allocator (wrapping
//! the system allocator — no external deps): `steady_bytes_per_round`
//! is the smallest per-round allocation delta observed after warm-up
//! rounds, i.e. what a round costs once every recycled buffer has
//! reached its high-water capacity. Task compute code may still
//! allocate (MSSP's receiver-side aggregation map, for instance) — the
//! number isolates what the *path* adds on top of the program itself.
//!
//! Timing and allocation mechanics live in [`mtvc_bench::measure`]
//! (shared with the later snapshot bins); cells report best-of-reps
//! wall time.

use mtvc_bench::measure::{measure_rounds, CountingAlloc, Measurement};
use mtvc_bench::round_loop::{drive_current, drive_legacy, RoundLoopReport};
use mtvc_engine::LocalIndex;
use mtvc_graph::partition::{HashPartitioner, Partitioner};
use mtvc_graph::{generators, VertexId};
use mtvc_tasks::bppr::{BpprProgram, SourceSet};
use mtvc_tasks::mssp::MsspProgram;
use std::io::Write;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const VERTICES: usize = 20_000;
const EDGES: usize = 80_000;
const WORKERS: usize = 4;
const SEED: u64 = 0x9E3;
/// Timed repetitions per cell (single-threaded full runs).
const REPS: usize = 5;

struct CellResult {
    report: RoundLoopReport,
    rounds_per_sec: f64,
    total_bytes_per_round: u64,
    steady_bytes_per_round: u64,
}

impl From<Measurement<RoundLoopReport>> for CellResult {
    fn from(m: Measurement<RoundLoopReport>) -> CellResult {
        CellResult {
            report: m.report,
            rounds_per_sec: m.report.rounds as f64 / m.best_secs,
            total_bytes_per_round: m.total_bytes_per_rep / m.report.rounds as u64,
            steady_bytes_per_round: m.steady_bytes_per_round,
        }
    }
}

fn json_cell(name: &str, r: &CellResult) -> String {
    format!(
        "    \"{name}\": {{\"rounds\": {}, \"sent_wire\": {}, \"delivered_tuples\": {}, \
         \"rounds_per_sec\": {:.2}, \"total_bytes_per_round\": {}, \
         \"steady_bytes_per_round\": {}}}",
        r.report.rounds,
        r.report.sent_wire,
        r.report.delivered_tuples,
        r.rounds_per_sec,
        r.total_bytes_per_round,
        r.steady_bytes_per_round,
    )
}

fn main() {
    let g = generators::power_law(VERTICES, EDGES, 2.3, 42);
    let part = HashPartitioner::default().partition(&g, WORKERS);
    let locals = LocalIndex::build(&part);
    let mssp = MsspProgram::new(
        (0..16u32)
            .map(|q| (q * 997) % VERTICES as VertexId)
            .collect(),
    );
    let bppr_sources: Vec<VertexId> = (0..256u32)
        .map(|s| (s * 613) % VERTICES as VertexId)
        .collect();
    let bppr = BpprProgram::new(8, 0.2).with_sources(SourceSet::subset(bppr_sources));

    let mut cells: Vec<String> = Vec::new();
    let mut mssp_combine_speedup = 0.0f64;
    for combine in [false, true] {
        let tag = if combine { "combine" } else { "nocombine" };
        let cur: CellResult = measure_rounds(REPS, |hook| {
            drive_current(&mssp, &g, &part, &locals, combine, SEED, hook)
        })
        .into();
        let old: CellResult = measure_rounds(REPS, |hook| {
            drive_legacy(&mssp, &g, &part, &locals, combine, SEED, hook)
        })
        .into();
        // Order-insensitive task: the two paths must agree exactly.
        assert_eq!(cur.report, old.report, "mssp parity ({tag})");
        let speedup = cur.rounds_per_sec / old.rounds_per_sec;
        if combine {
            mssp_combine_speedup = speedup;
        }
        println!(
            "mssp_{tag}: current {:.1} rounds/s vs legacy {:.1} rounds/s ({speedup:.2}x), \
             steady alloc/round {} vs {} bytes",
            cur.rounds_per_sec,
            old.rounds_per_sec,
            cur.steady_bytes_per_round,
            old.steady_bytes_per_round
        );
        cells.push(json_cell(&format!("mssp_current_{tag}"), &cur));
        cells.push(json_cell(&format!("mssp_legacy_{tag}"), &old));

        let cur: CellResult = measure_rounds(REPS, |hook| {
            drive_current(&bppr, &g, &part, &locals, combine, SEED, hook)
        })
        .into();
        let old: CellResult = measure_rounds(REPS, |hook| {
            drive_legacy(&bppr, &g, &part, &locals, combine, SEED, hook)
        })
        .into();
        println!(
            "bppr_{tag}: current {:.1} rounds/s vs legacy {:.1} rounds/s ({:.2}x), \
             steady alloc/round {} vs {} bytes",
            cur.rounds_per_sec,
            old.rounds_per_sec,
            cur.rounds_per_sec / old.rounds_per_sec,
            cur.steady_bytes_per_round,
            old.steady_bytes_per_round
        );
        cells.push(json_cell(&format!("bppr_current_{tag}"), &cur));
        cells.push(json_cell(&format!("bppr_legacy_{tag}"), &old));
    }

    let json = format!(
        "{{\n  \"bench\": \"pr3_round_loop\",\n  \"graph\": {{\"vertices\": {VERTICES}, \
         \"edges\": {EDGES}, \"workers\": {WORKERS}}},\n  \"reps\": {REPS},\n  \
         \"mssp_combine_speedup\": {mssp_combine_speedup:.3},\n  \"cells\": {{\n{}\n  }}\n}}\n",
        cells.join(",\n")
    );
    let mut f = std::fs::File::create("BENCH_pr3.json").expect("create BENCH_pr3.json");
    f.write_all(json.as_bytes()).expect("write BENCH_pr3.json");
    println!("mssp combine speedup: {mssp_combine_speedup:.2}x -> BENCH_pr3.json");
}
