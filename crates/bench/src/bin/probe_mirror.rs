//! Calibration diagnostic for the Pregel+(mirror) lines: prints the
//! per-batch behaviour of the forward-push BPPR under the mirror memory
//! divisor (see EXPERIMENTS.md "Calibration").
//!
//! ```sh
//! cargo run --release -p mtvc-bench --bin probe_mirror
//! ```
use mtvc_bench::{run_cell, PaperTask, ScaledDataset};
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Dataset;
use mtvc_systems::SystemKind;

fn main() {
    let sd = ScaledDataset::load(Dataset::Dblp);
    let cluster = sd.cluster_for(ClusterSpec::galaxy8(), SystemKind::PregelPlusMirror);
    println!(
        "mirror machine mem = {} usable = {}",
        cluster.machine.memory,
        cluster.machine.usable_memory()
    );
    for &b in &[1usize, 2, 4, 8, 16] {
        let r = run_cell(
            &sd,
            &cluster,
            SystemKind::PregelPlusMirror,
            PaperTask::Bppr(160),
            b,
        );
        println!(
            "b={b:<3} outcome={:<10} peak_mem={:<8} msgs/round={:.2}M rounds={} netMB={:.1}",
            r.outcome.to_string(),
            r.stats.peak_memory.to_string(),
            r.stats.congestion() / 1e6,
            r.stats.rounds,
            r.stats.total_network_bytes.as_f64() / 1e6
        );
    }
}
