//! Calibration diagnostic for the GraphD (out-of-core) settings: prints
//! spill/utilization/queue behaviour for the Figure 2 and Table 3
//! configurations so the disk-model constants can be inspected.
//!
//! ```sh
//! cargo run --release -p mtvc-bench --bin probe_graphd
//! ```
use mtvc_bench::{run_cell, PaperTask, ScaledDataset};
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Dataset;
use mtvc_systems::SystemKind;

fn main() {
    let sd = ScaledDataset::load(Dataset::Dblp);
    println!("--- Fig2 setting: GraphD BPPR(6144) @ Galaxy-8 ---");
    let cluster = sd.cluster(ClusterSpec::galaxy8());
    for &b in &[1usize, 2, 4, 8, 16] {
        let r = run_cell(&sd, &cluster, SystemKind::GraphD, PaperTask::Bppr(6144), b);
        println!(
            "b={b:<3} outcome={:<10} spilled={:<10} util={:.2} overuseIO={:.0}s queue={:.0} rounds={}",
            r.outcome.to_string(), r.stats.total_spilled_bytes.to_string(),
            r.stats.max_disk_utilization, r.stats.disk_overuse.as_secs(),
            r.stats.max_io_queue_len, r.stats.rounds);
    }
    println!("--- Table 3 setting: GraphD BPPR(2048) @ Galaxy-27 ---");
    let cluster = sd.cluster(ClusterSpec::galaxy27());
    for &b in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
        let r = run_cell(&sd, &cluster, SystemKind::GraphD, PaperTask::Bppr(2048), b);
        println!(
            "b={b:<4} total={:<10} overuseNet={:.0}s overuseIO={:.0}s util={:.2} queue={:.0}",
            r.outcome.to_string(),
            r.stats.network_overuse.as_secs(),
            r.stats.disk_overuse.as_secs(),
            r.stats.max_disk_utilization,
            r.stats.max_io_queue_len
        );
    }
}
