//! Shared harness for the figure/table regeneration benches.
//!
//! Every bench target reconstructs one table or figure of the paper:
//! it builds the scaled dataset + cluster pair (same σ for both, per
//! DESIGN.md §2), runs the multi-task jobs, and prints the paper-style
//! rows. CSV copies land in `target/experiments/`.

pub mod measure;
pub mod round_loop;

use mtvc_cluster::ClusterSpec;
use mtvc_core::{run_job, BatchSchedule, JobResult, JobSpec, Task};
use mtvc_graph::{Dataset, Graph};
use mtvc_metrics::Table;
use mtvc_systems::SystemKind;
use std::path::PathBuf;

/// Deterministic seed shared by all experiments.
pub const SEED: u64 = 0xEDB7_2023;

/// A dataset prepared at its experiment scale, with the matching
/// σ-scaled cluster factory.
pub struct ScaledDataset {
    pub dataset: Dataset,
    pub scale: u64,
    pub graph: Graph,
}

impl ScaledDataset {
    /// Load `dataset` at its default experiment scale.
    pub fn load(dataset: Dataset) -> ScaledDataset {
        let scale = dataset.info().default_scale;
        ScaledDataset {
            dataset,
            scale,
            graph: dataset.generate(scale),
        }
    }

    /// Load at an explicit scale divisor.
    pub fn load_at(dataset: Dataset, scale: u64) -> ScaledDataset {
        ScaledDataset {
            dataset,
            scale,
            graph: dataset.generate(scale),
        }
    }

    /// A cluster preset scaled to this dataset's σ.
    pub fn cluster(&self, preset: ClusterSpec) -> ClusterSpec {
        preset.scaled(self.scale as f64)
    }

    /// Cluster for a specific system. Pregel+(mirror) is the one case
    /// where σ-scaling cannot preserve memory pressure: the push
    /// variant's state is per (vertex, source) pair, which caps at n²
    /// in a scaled graph while the paper's support does not. Its
    /// machines get an extra memory divisor so the mirror lines hit
    /// the memory-bound regime at the paper's workloads (see
    /// EXPERIMENTS.md "Calibration").
    pub fn cluster_for(&self, preset: ClusterSpec, system: SystemKind) -> ClusterSpec {
        let mut c = self.cluster(preset);
        if system.is_broadcast() {
            c.machine.memory = c.machine.memory.scaled(1.0 / MIRROR_MEM_DIV);
        }
        c
    }

    /// Translate a paper-units workload into the effective task at this
    /// scale. All workloads carry over verbatim: BPPR walks are
    /// per-node (scale-free), and MSSP/BKHS message volume already
    /// scales with the graph (reach ∝ n), so source counts stay at
    /// paper values, with repeats addressed as distinct queries.
    pub fn task(&self, paper: PaperTask) -> Task {
        match paper {
            PaperTask::Bppr(w) => Task::bppr(w),
            PaperTask::Mssp(s) => Task::mssp(s),
            PaperTask::Bkhs(s, k) => Task::Bkhs { num_sources: s, k },
        }
    }
}

/// A workload quoted in the paper's units.
#[derive(Debug, Clone, Copy)]
pub enum PaperTask {
    /// BPPR: walks per node.
    Bppr(u64),
    /// MSSP: number of sources (paper units; scaled by σ).
    Mssp(u64),
    /// BKHS: number of sources + hop bound.
    Bkhs(u64, u32),
}

impl PaperTask {
    pub fn paper_workload(&self) -> u64 {
        match *self {
            PaperTask::Bppr(w) => w,
            PaperTask::Mssp(s) => s,
            PaperTask::Bkhs(s, _) => s,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            PaperTask::Bppr(_) => "BPPR",
            PaperTask::Mssp(_) => "MSSP",
            PaperTask::Bkhs(..) => "BKHS",
        }
    }
}

/// Run one (dataset, cluster, system, task, k-batch) cell.
pub fn run_cell(
    sd: &ScaledDataset,
    cluster: &ClusterSpec,
    system: SystemKind,
    paper: PaperTask,
    batches: usize,
) -> JobResult {
    let task = sd.task(paper);
    let spec = JobSpec::new(
        task,
        system,
        cluster.clone(),
        BatchSchedule::equal(task.workload(), batches),
    )
    .with_seed(SEED);
    run_job(&sd.graph, &spec)
}

/// The doubling batch axis the figures use.
pub const BATCH_AXIS: [usize; 5] = [1, 2, 4, 8, 16];

/// Extra memory divisor applied to Pregel+(mirror) machines (see
/// [`ScaledDataset::cluster_for`]).
pub const MIRROR_MEM_DIV: f64 = 3.2;

/// Render a table to stdout and save a CSV copy under
/// `target/experiments/<id>.csv`.
pub fn emit(id: &str, table: &Table) {
    table.print();
    let dir = PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{id}.csv"));
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Format a plot time the way the paper annotates bars: the time, or
/// `Overload`/`Overflow`.
pub fn fmt_outcome(r: &JobResult) -> String {
    match r.outcome {
        mtvc_metrics::RunOutcome::Completed(t) => format!("{:.1}", t.as_secs()),
        other => other.to_string(),
    }
}

/// Mark the best (minimum plot-time) entry with the paper's arrow.
pub fn mark_optimal(times: &[f64], idx: usize) -> &'static str {
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    if (times[idx] - min).abs() < 1e-9 {
        " <== optimal"
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_dataset_translates_workloads() {
        let sd = ScaledDataset::load_at(Dataset::Dblp, 256);
        match sd.task(PaperTask::Bppr(10240)) {
            Task::Bppr { walks_per_node, .. } => assert_eq!(walks_per_node, 10240),
            _ => panic!(),
        }
        match sd.task(PaperTask::Mssp(4096)) {
            Task::Mssp { num_sources } => assert_eq!(num_sources, 4096),
            _ => panic!(),
        }
    }

    #[test]
    fn cluster_scaling_applied() {
        let sd = ScaledDataset::load_at(Dataset::Dblp, 256);
        let c = sd.cluster(ClusterSpec::galaxy8());
        assert_eq!(c.machines, 8);
        assert!(c.machine.memory < mtvc_metrics::Bytes::gib(1));
    }

    #[test]
    fn mark_optimal_finds_minimum() {
        let times = [5.0, 2.0, 7.0];
        assert_eq!(mark_optimal(&times, 1), " <== optimal");
        assert_eq!(mark_optimal(&times, 0), "");
    }
}
