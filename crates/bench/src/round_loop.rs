//! End-to-end round-loop drivers for the envelope-path benchmarks.
//!
//! Two serial (single-threaded) implementations of the BSP round loop —
//! compute phase + routing phase, no cost pricing — over the *same*
//! [`VertexProgram`]s the engine runs:
//!
//! * [`drive_current`] — the engine's shipped hot path: sender-side
//!   combining, grouped delivery through [`RouteGrid`]/[`Inbox`], and
//!   borrowed per-vertex delivery runs (zero clones, recycled buffers).
//! * [`drive_slab`] / [`drive_slab_recycled`] — the same hot path
//!   running a dense-slab kernel ([`SlabProgram`]) instead of the
//!   hash-map state: per-vertex state is a
//!   [`StateSlab`](mtvc_engine::StateSlab) row, compute
//!   is frontier-driven, and the recycled variant draws worker slabs
//!   from a [`SlabRecycler`] so back-to-back runs allocate no state.
//! * [`drive_legacy`] — a faithful replica of the pre-sender-combining
//!   path, kept here as the benchmark baseline: combining happens at
//!   the merge stage via a stable sort over `(dest, key)` tags, inboxes
//!   are flat envelope vectors, and the compute phase re-groups each
//!   inbox with a counting sort whose `counts`/`order` buffers are
//!   allocated fresh every round and clones every message into a
//!   scratch pair vector.
//!
//! All drivers execute real task code via the public [`Context`] and
//! the engine's [`vertex_rng`], so for order-insensitive programs
//! (MSSP: receiver-side min-aggregation) the paths produce identical
//! round counts and wire totals — making the timing delta a pure
//! measurement of the envelope path (current vs legacy) or the state
//! layout (slab vs hash map).

use mtvc_engine::{
    vertex_rng, Context, Delivery, Envelope, Inbox, LocalIndex, Message, Outbox, PerSlab,
    PerVertex, ProgramCore, RouteGrid, RoutePolicy, SlabProgram, SlabRecycler, VertexProgram,
};
use mtvc_graph::partition::Partition;
use mtvc_graph::Graph;

/// What one full run of a driver did (for parity checks and rate math).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundLoopReport {
    /// Rounds executed (including the init round).
    pub rounds: usize,
    /// Total wire messages produced across the run.
    pub sent_wire: u64,
    /// Total envelopes delivered (post-combining tuples).
    pub delivered_tuples: u64,
}

/// [`RoundLoopReport`] plus the wire-accounting measurements a
/// [`RoutePolicy`]-driven run produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyReport {
    pub report: RoundLoopReport,
    /// Post-codec cross-worker bucket bytes across the run (local
    /// flows deliver by pointer and never serialize); zero under
    /// [`WireFormat::Tuples`].
    ///
    /// [`WireFormat::Tuples`]: mtvc_engine::WireFormat::Tuples
    pub encoded_wire_bytes: u64,
    /// What the same cross-worker traffic costs under the
    /// `size_of`-style estimate (`payload_units * msg_bytes`), for
    /// shrinkage ratios.
    pub estimated_wire_bytes: u64,
    /// Request-respond cache totals across the run.
    pub respond_hits: u64,
    pub respond_misses: u64,
    /// Shard-stage envelope copies across the run (see
    /// [`RoutingStats::shard_copy_bytes`]): the flat two-stage path
    /// writes every surviving envelope twice (emit materialisation +
    /// bucket append), the fold-at-send path once.
    ///
    /// [`RoutingStats::shard_copy_bytes`]: mtvc_engine::RoutingStats
    pub shard_copy_bytes: u64,
    /// Out-of-core spill traffic (messages plus paged-out slab state)
    /// across the run. The serial drivers in this module never page,
    /// so they report zero; Runner-driven benches fill it in via
    /// [`PolicyReport::absorb_run`].
    pub total_spilled_bytes: u64,
    /// Partition bytes streamed in by the pager across the run (zero
    /// when paging is off or the driver is serial in-memory).
    pub total_loaded_bytes: u64,
}

impl PolicyReport {
    /// Fold a Runner run's out-of-core byte totals into this report
    /// (the serial drivers here never page, so only Runner-driven
    /// benches call this).
    pub fn absorb_run(&mut self, stats: &mtvc_metrics::RunStats) {
        self.total_spilled_bytes += stats.total_spilled_bytes.get();
        self.total_loaded_bytes += stats.total_loaded_bytes.get();
    }
}

/// Ceiling on rounds for runaway protection in both drivers.
const ROUND_CAP: usize = 10_000;

/// Run any [`ProgramCore`] to quiescence on the current engine hot
/// path (sender-side combining + grouped delivery), single-threaded.
/// `on_round_end(round)` fires after each round's routing completes —
/// the allocation bench snapshots its byte counter there. Stores are
/// handed back through [`ProgramCore::recycle`] when the run finishes.
pub fn drive_core<P: ProgramCore>(
    core: &P,
    graph: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    combine: bool,
    seed: u64,
    on_round_end: impl FnMut(usize),
) -> RoundLoopReport {
    drive_core_policy(
        core,
        graph,
        part,
        locals,
        combine,
        &RoutePolicy::default(),
        seed,
        on_round_end,
    )
    .report
}

/// [`drive_core`] under an explicit [`RoutePolicy`] (compact wire
/// format, adaptive combining, respond caching), returning the policy
/// measurements alongside the parity report.
#[allow(clippy::too_many_arguments)]
pub fn drive_core_policy<P: ProgramCore>(
    core: &P,
    graph: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    combine: bool,
    policy: &RoutePolicy,
    seed: u64,
    mut on_round_end: impl FnMut(usize),
) -> PolicyReport {
    let workers = part.num_workers();
    let msg_bytes = core.message_bytes();
    let mut stores: Vec<P::Store> = locals
        .worker_vertices()
        .iter()
        .map(|list| core.make_store(list))
        .collect();
    let mut outboxes: Vec<Outbox<P::Message>> = (0..workers).map(|_| Outbox::new()).collect();
    let mut inboxes: Vec<Inbox<P::Message>> = (0..workers).map(|_| Inbox::new()).collect();
    let mut grid: RouteGrid<P::Message> = RouteGrid::new(workers);
    grid.set_policy(*policy);
    let mut report = PolicyReport {
        report: RoundLoopReport {
            rounds: 0,
            sent_wire: 0,
            delivered_tuples: 0,
        },
        encoded_wire_bytes: 0,
        estimated_wire_bytes: 0,
        respond_hits: 0,
        respond_misses: 0,
        shard_copy_bytes: 0,
        total_spilled_bytes: 0,
        total_loaded_bytes: 0,
    };

    for round in 0..ROUND_CAP {
        if round > 0 {
            if inboxes.iter().all(|i| i.is_empty()) {
                break;
            }
            if core.max_rounds().is_some_and(|max| round > max) {
                break;
            }
        }
        for (w, vertices) in locals.worker_vertices().iter().enumerate() {
            let outbox = &mut outboxes[w];
            outbox.clear();
            if round == 0 {
                for (li, &v) in vertices.iter().enumerate() {
                    let mut rng = vertex_rng(seed, round, v);
                    let mut ctx = Context::new(v, round, graph, &mut rng, outbox);
                    core.init_vertex(v, li as u32, &mut stores[w], &mut ctx);
                }
            } else {
                let inbox = &mut inboxes[w];
                let mut start = 0usize;
                for run in inbox.runs() {
                    let msgs = &inbox.deliveries()[start..run.end as usize];
                    start = run.end as usize;
                    let mut rng = vertex_rng(seed, round, run.dest);
                    let mut ctx = Context::new(run.dest, round, graph, &mut rng, outbox);
                    core.compute_vertex(run.dest, run.local, &mut stores[w], msgs, &mut ctx);
                }
                inbox.clear();
            }
        }
        let stats = grid.route_round(
            None,
            &mut outboxes,
            &mut inboxes,
            graph,
            part,
            locals,
            None,
            combine,
            msg_bytes,
        );
        report.report.sent_wire += stats.sent_wire;
        report.report.delivered_tuples += stats.delivered_tuples;
        report.report.rounds = round + 1;
        report.encoded_wire_bytes += stats.encoded_wire_bytes;
        report.estimated_wire_bytes += stats.net_out_bytes.iter().sum::<u64>();
        report.respond_hits += stats.respond_hits;
        report.respond_misses += stats.respond_misses;
        report.shard_copy_bytes += stats.shard_copy_bytes;
        on_round_end(round);
    }
    core.recycle(stores);
    report
}

/// [`drive_core_policy`] on the fold-at-send pre-sharded emit path:
/// compute writes straight into per-destination shards through
/// [`ShardedOutbox`](mtvc_engine::ShardedOutbox) sinks (`begin_round`
/// → `emit_sinks` → `route_presharded`) instead of materialising a
/// flat outbox for the shard stage to re-walk. Traffic and every
/// statistic except `shard_copy_bytes` are bit-identical to
/// [`drive_core_policy`]; steady-state rounds allocate nothing on
/// either path.
#[allow(clippy::too_many_arguments)]
pub fn drive_core_presharded<P: ProgramCore>(
    core: &P,
    graph: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    combine: bool,
    policy: &RoutePolicy,
    seed: u64,
    mut on_round_end: impl FnMut(usize),
) -> PolicyReport {
    let workers = part.num_workers();
    let msg_bytes = core.message_bytes();
    let mut stores: Vec<P::Store> = locals
        .worker_vertices()
        .iter()
        .map(|list| core.make_store(list))
        .collect();
    let mut inboxes: Vec<Inbox<P::Message>> = (0..workers).map(|_| Inbox::new()).collect();
    let mut grid: RouteGrid<P::Message> = RouteGrid::new(workers);
    grid.set_policy(*policy);
    let mut report = PolicyReport {
        report: RoundLoopReport {
            rounds: 0,
            sent_wire: 0,
            delivered_tuples: 0,
        },
        encoded_wire_bytes: 0,
        estimated_wire_bytes: 0,
        respond_hits: 0,
        respond_misses: 0,
        shard_copy_bytes: 0,
        total_spilled_bytes: 0,
        total_loaded_bytes: 0,
    };

    for round in 0..ROUND_CAP {
        if round > 0 {
            if inboxes.iter().all(|i| i.is_empty()) {
                break;
            }
            if core.max_rounds().is_some_and(|max| round > max) {
                break;
            }
        }
        grid.begin_round(combine, locals);
        for (((w, vertices), mut sink), inbox) in locals
            .worker_vertices()
            .iter()
            .enumerate()
            .zip(grid.emit_sinks(graph, part, locals, None, msg_bytes))
            .zip(inboxes.iter_mut())
        {
            if round == 0 {
                for (li, &v) in vertices.iter().enumerate() {
                    let mut rng = vertex_rng(seed, round, v);
                    let mut ctx = Context::new(v, round, graph, &mut rng, &mut sink);
                    core.init_vertex(v, li as u32, &mut stores[w], &mut ctx);
                }
            } else {
                let mut start = 0usize;
                for run in inbox.runs() {
                    let msgs = &inbox.deliveries()[start..run.end as usize];
                    start = run.end as usize;
                    let mut rng = vertex_rng(seed, round, run.dest);
                    let mut ctx = Context::new(run.dest, round, graph, &mut rng, &mut sink);
                    core.compute_vertex(run.dest, run.local, &mut stores[w], msgs, &mut ctx);
                }
                inbox.clear();
            }
        }
        let stats = grid.route_presharded(None, &mut inboxes, locals, msg_bytes, combine);
        report.report.sent_wire += stats.sent_wire;
        report.report.delivered_tuples += stats.delivered_tuples;
        report.report.rounds = round + 1;
        report.encoded_wire_bytes += stats.encoded_wire_bytes;
        report.estimated_wire_bytes += stats.net_out_bytes.iter().sum::<u64>();
        report.respond_hits += stats.respond_hits;
        report.respond_misses += stats.respond_misses;
        report.shard_copy_bytes += stats.shard_copy_bytes;
        on_round_end(round);
    }
    core.recycle(stores);
    report
}

/// Run a [`VertexProgram`] (hash-map state) on the current hot path.
pub fn drive_current<P: VertexProgram>(
    program: &P,
    graph: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    combine: bool,
    seed: u64,
    on_round_end: impl FnMut(usize),
) -> RoundLoopReport {
    drive_core(
        &PerVertex(program),
        graph,
        part,
        locals,
        combine,
        seed,
        on_round_end,
    )
}

/// Run a [`SlabProgram`] (dense slab state) on the current hot path,
/// allocating fresh worker slabs.
pub fn drive_slab<P: SlabProgram>(
    program: &P,
    graph: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    combine: bool,
    seed: u64,
    on_round_end: impl FnMut(usize),
) -> RoundLoopReport {
    drive_core(
        &PerSlab::new(program),
        graph,
        part,
        locals,
        combine,
        seed,
        on_round_end,
    )
}

/// Run a [`SlabProgram`] drawing worker slabs from (and retiring them
/// to) `recycler` — after a warm-up run the state phase performs no
/// allocation at all.
#[allow(clippy::too_many_arguments)]
pub fn drive_slab_recycled<P: SlabProgram>(
    program: &P,
    recycler: &SlabRecycler<P::Cell>,
    graph: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    combine: bool,
    seed: u64,
    on_round_end: impl FnMut(usize),
) -> RoundLoopReport {
    drive_core(
        &PerSlab::with_recycler(program, recycler),
        graph,
        part,
        locals,
        combine,
        seed,
        on_round_end,
    )
}

/// Run `program` to quiescence on a replica of the pre-PR envelope
/// path, single-threaded. See the module docs for what this reproduces;
/// it exists purely as the baseline the `round_loop` bench and
/// `bench_pr3` bin measure against.
pub fn drive_legacy<P: VertexProgram>(
    program: &P,
    graph: &Graph,
    part: &Partition,
    locals: &LocalIndex,
    combine: bool,
    seed: u64,
    mut on_round_end: impl FnMut(usize),
) -> RoundLoopReport {
    let workers = part.num_workers();
    let mut states: Vec<Vec<P::State>> = locals
        .worker_vertices()
        .iter()
        .map(|list| vec![P::State::default(); list.len()])
        .collect();
    let mut outboxes: Vec<Outbox<P::Message>> = (0..workers).map(|_| Outbox::new()).collect();
    let mut inboxes: Vec<Vec<Envelope<P::Message>>> = (0..workers).map(|_| Vec::new()).collect();
    // The pre-PR grid recycled its shard buckets across rounds too.
    let mut shards: Vec<Vec<Vec<Envelope<P::Message>>>> = (0..workers)
        .map(|_| (0..workers).map(|_| Vec::new()).collect())
        .collect();
    let mut report = RoundLoopReport {
        rounds: 0,
        sent_wire: 0,
        delivered_tuples: 0,
    };

    for round in 0..ROUND_CAP {
        if round > 0 {
            if inboxes.iter().all(|i| i.is_empty()) {
                break;
            }
            if program.max_rounds().is_some_and(|max| round > max) {
                break;
            }
        }
        for (w, vertices) in locals.worker_vertices().iter().enumerate() {
            let outbox = &mut outboxes[w];
            outbox.clear();
            if round == 0 {
                for (li, &v) in vertices.iter().enumerate() {
                    let mut rng = vertex_rng(seed, round, v);
                    let mut ctx = Context::new(v, round, graph, &mut rng, outbox);
                    program.init(v, &mut states[w][li], &mut ctx);
                }
            } else {
                legacy_worker_compute(
                    program,
                    graph,
                    round,
                    seed,
                    locals,
                    &mut inboxes[w],
                    outbox,
                    &mut states[w],
                );
            }
        }
        let (sent, tuples) = legacy_route(
            graph,
            part,
            combine,
            &mut outboxes,
            &mut shards,
            &mut inboxes,
        );
        report.sent_wire += sent;
        report.delivered_tuples += tuples;
        report.rounds = round + 1;
        on_round_end(round);
    }
    report
}

/// Pre-PR routing: shard per destination worker, combine each shard at
/// the merge stage with a stable sort over `(dest, key_is_none, key)`
/// tags, then concatenate the column (in source order) into a flat
/// inbox vector.
fn legacy_route<M: Message>(
    graph: &Graph,
    part: &Partition,
    combine: bool,
    outboxes: &mut [Outbox<M>],
    shards: &mut [Vec<Vec<Envelope<M>>>],
    inboxes: &mut [Vec<Envelope<M>>],
) -> (u64, u64) {
    let mut sent_wire = 0u64;
    for (row, outbox) in shards.iter_mut().zip(outboxes.iter_mut()) {
        for env in outbox.sends.drain(..) {
            sent_wire += env.mult;
            row[part.owner_of(env.dest) as usize].push(env);
        }
        for (origin, msg, mult) in outbox.broadcasts.drain(..) {
            sent_wire += graph.degree(origin) as u64 * mult;
            for &t in graph.neighbors(origin) {
                row[part.owner_of(t) as usize].push(Envelope::new(t, msg.clone(), mult));
            }
        }
    }
    let mut tuples = 0u64;
    for (dst, inbox) in inboxes.iter_mut().enumerate() {
        for row in shards.iter_mut() {
            let bucket = &mut row[dst];
            if combine {
                legacy_combine_bucket(bucket);
            }
            tuples += bucket.len() as u64;
            inbox.append(bucket);
        }
    }
    (sent_wire, tuples)
}

/// Pre-PR merge-stage combining: stable sort by `(dest, key_is_none,
/// key)` (unkeyed entries ordered after all keyed ones so `u64::MAX`
/// keys never interleave with them), then fold adjacent equal-keyed
/// envelopes.
fn legacy_combine_bucket<M: Message>(bucket: &mut Vec<Envelope<M>>) {
    if bucket.len() < 2 {
        return;
    }
    bucket.sort_by_cached_key(|e| {
        let key = e.msg.combine_key();
        (e.dest, key.is_none(), key.unwrap_or(0))
    });
    let mut write = 0usize;
    for read in 1..bucket.len() {
        let (head, tail) = bucket.split_at_mut(read);
        let prev = &mut head[write];
        let cur = &tail[0];
        let mergeable = prev.dest == cur.dest
            && prev.msg.combine_key().is_some()
            && prev.msg.combine_key() == cur.msg.combine_key();
        if mergeable {
            prev.msg.merge(&cur.msg);
            prev.mult += cur.mult;
        } else {
            write += 1;
            bucket.swap(write, read);
        }
    }
    bucket.truncate(write + 1);
}

/// Pre-PR compute phase for one worker: re-group the flat inbox with a
/// counting sort (fresh `counts`/`order` every round) and clone each
/// delivery into a scratch pair vector before calling `compute`.
#[allow(clippy::too_many_arguments)]
fn legacy_worker_compute<P: VertexProgram>(
    program: &P,
    graph: &Graph,
    round: usize,
    seed: u64,
    locals: &LocalIndex,
    inbox: &mut Vec<Envelope<P::Message>>,
    outbox: &mut Outbox<P::Message>,
    states: &mut [P::State],
) {
    let nloc = states.len();
    let mut counts = vec![0u32; nloc + 1];
    for e in inbox.iter() {
        counts[locals.local_of(e.dest) as usize + 1] += 1;
    }
    for i in 1..=nloc {
        counts[i] += counts[i - 1];
    }
    let mut order: Vec<u32> = vec![0; inbox.len()];
    {
        let mut cursor = counts.clone();
        for (i, e) in inbox.iter().enumerate() {
            let li = locals.local_of(e.dest) as usize;
            order[cursor[li] as usize] = i as u32;
            cursor[li] += 1;
        }
    }
    let mut pairs: Vec<Delivery<P::Message>> = Vec::new();
    for li in 0..nloc {
        let (start, end) = (counts[li] as usize, counts[li + 1] as usize);
        if start == end {
            continue;
        }
        let dest = inbox[order[start] as usize].dest;
        pairs.clear();
        for &idx in &order[start..end] {
            let e = &inbox[idx as usize];
            pairs.push(Delivery {
                msg: e.msg.clone(),
                mult: e.mult,
            });
        }
        let mut rng = vertex_rng(seed, round, dest);
        let mut ctx = Context::new(dest, round, graph, &mut rng, outbox);
        program.compute(dest, &mut states[li], &pairs, &mut ctx);
    }
    inbox.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;
    use mtvc_graph::partition::{HashPartitioner, Partitioner};
    use mtvc_tasks::mssp::MsspProgram;

    /// MSSP aggregates receiver-side, so the two paths must agree
    /// exactly on rounds and wire volume — combining on or off.
    #[test]
    fn current_and_legacy_paths_agree_on_mssp() {
        let g = generators::power_law(400, 1600, 2.3, 7);
        let part = HashPartitioner::default().partition(&g, 4);
        let locals = LocalIndex::build(&part);
        let program = MsspProgram::new(vec![0, 13, 200]);
        for combine in [false, true] {
            let cur = drive_current(&program, &g, &part, &locals, combine, 42, |_| {});
            let old = drive_legacy(&program, &g, &part, &locals, combine, 42, |_| {});
            assert_eq!(cur.rounds, old.rounds, "combine={combine}");
            assert_eq!(cur.sent_wire, old.sent_wire, "combine={combine}");
            assert_eq!(
                cur.delivered_tuples, old.delivered_tuples,
                "combine={combine}"
            );
            assert!(cur.rounds > 2, "run must actually do work");
        }
    }

    /// The slab MSSP kernel must be traffic-identical to the hash-map
    /// kernel, fresh or recycled — and recycling must return every
    /// worker slab to the pool.
    #[test]
    fn slab_and_hashmap_paths_agree_on_mssp() {
        let g = generators::power_law(400, 1600, 2.3, 7);
        let part = HashPartitioner::default().partition(&g, 4);
        let locals = LocalIndex::build(&part);
        let sources = vec![0, 13, 200];
        let hashmap = MsspProgram::new(sources.clone());
        let slab = mtvc_tasks::MsspSlabProgram::new(sources);
        let recycler = SlabRecycler::new();
        for combine in [false, true] {
            let base = drive_current(&hashmap, &g, &part, &locals, combine, 42, |_| {});
            let dense = drive_slab(&slab, &g, &part, &locals, combine, 42, |_| {});
            let pooled =
                drive_slab_recycled(&slab, &recycler, &g, &part, &locals, combine, 42, |_| {});
            assert_eq!(base, dense, "combine={combine}");
            assert_eq!(base, pooled, "combine={combine}");
            assert_eq!(recycler.pooled(), 4, "all worker slabs retired");
        }
    }

    /// The fold-at-send driver must agree with the flat two-stage
    /// driver on every statistic except shard-stage copies, which it
    /// must strictly shrink (no emit materialisation).
    #[test]
    fn presharded_driver_agrees_with_flat_and_halves_copies() {
        let g = generators::power_law(400, 1600, 2.3, 7);
        let part = HashPartitioner::default().partition(&g, 4);
        let locals = LocalIndex::build(&part);
        let slab = mtvc_tasks::MsspSlabProgram::new(vec![0, 13, 200]);
        let core = PerSlab::new(&slab);
        let policy = RoutePolicy::default();
        for combine in [false, true] {
            let flat = drive_core_policy(&core, &g, &part, &locals, combine, &policy, 42, |_| {});
            let pre =
                drive_core_presharded(&core, &g, &part, &locals, combine, &policy, 42, |_| {});
            assert_eq!(flat.report, pre.report, "combine={combine}");
            assert_eq!(flat.encoded_wire_bytes, pre.encoded_wire_bytes);
            assert_eq!(flat.estimated_wire_bytes, pre.estimated_wire_bytes);
            assert!(
                pre.shard_copy_bytes < flat.shard_copy_bytes,
                "combine={combine}: presharded {} must beat flat {}",
                pre.shard_copy_bytes,
                flat.shard_copy_bytes
            );
        }
    }

    /// Combining must shrink delivered tuples but never wire totals.
    #[test]
    fn combining_shrinks_tuples_not_wire() {
        let g = generators::power_law(400, 1600, 2.3, 7);
        let part = HashPartitioner::default().partition(&g, 4);
        let locals = LocalIndex::build(&part);
        let program = MsspProgram::new(vec![0, 0, 5]);
        let plain = drive_current(&program, &g, &part, &locals, false, 1, |_| {});
        let combined = drive_current(&program, &g, &part, &locals, true, 1, |_| {});
        assert_eq!(plain.sent_wire, combined.sent_wire);
        assert!(combined.delivered_tuples < plain.delivered_tuples);
    }
}
