//! Figure 6 — statistics behind Figure 4: per-round messages and raw
//! running times for workloads 1024/10240/12288 at 1/2/4 batches.
//!
//! The paper's reading: messages per round grow ~linearly with the
//! workload (~10x from 1024 to 10240) while the running time grows
//! super-linearly once the congestion threshold is hit. The cutoff is
//! raised so thrashed runs report raw times (the paper lists 6641.5 s).

use mtvc_bench::{emit, PaperTask, ScaledDataset, SEED};
use mtvc_cluster::ClusterSpec;
use mtvc_core::{run_job, BatchSchedule, JobSpec};
use mtvc_graph::Dataset;
use mtvc_metrics::{row, SimTime, Table};
use mtvc_systems::SystemKind;

fn main() {
    let sd = ScaledDataset::load(Dataset::Dblp);
    let cluster = sd.cluster(ClusterSpec::galaxy8());
    let mut t = Table::new(
        "Figure 6: per-round messages and raw times (DBLP, Galaxy-8, Pregel+)",
        &["Workload", "batches", "#msgs/round (M)", "time (s)"],
    );
    let mut per_round_msgs = Vec::new();
    for &w in &[1024u64, 10240, 12288] {
        for &b in &[1usize, 2, 4] {
            let task = sd.task(PaperTask::Bppr(w));
            let mut spec = JobSpec::new(
                task,
                SystemKind::PregelPlus,
                cluster.clone(),
                BatchSchedule::equal(task.workload(), b),
            )
            .with_seed(SEED);
            // Raw-time reporting: let thrashed runs finish.
            spec.cutoff = SimTime::secs(50_000.0);
            let r = run_job(&sd.graph, &spec);
            let congestion_m = r.stats.congestion() / 1.0e6;
            if b == 1 {
                per_round_msgs.push((w, congestion_m));
            }
            t.row(row!(
                w,
                b,
                format!("{congestion_m:.2}"),
                format!("{:.1}", r.plot_time().as_secs())
            ));
        }
    }
    emit("fig06", &t);
    // ~10x workload => ~10x messages per round (1-batch column).
    let ratio = per_round_msgs[1].1 / per_round_msgs[0].1;
    println!("msgs/round ratio (10240 vs 1024) = {ratio:.2}");
    assert!(
        (5.0..20.0).contains(&ratio),
        "expected ~10x message growth, got {ratio:.2}"
    );
}
