//! Figure 5 — batch sweeps on Galaxy-27 (defaults: DBLP, BPPR, Pregel+),
//! including the billion-edge Twitter/Friendster stand-ins.

use mtvc_bench::{emit, fmt_outcome, mark_optimal, run_cell, PaperTask, ScaledDataset, BATCH_AXIS};
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Dataset;
use mtvc_metrics::{row, Series, Table};
use mtvc_systems::SystemKind;

fn sweep_panel(
    t: &mut Table,
    summary: &mut Vec<(String, bool)>,
    label: &str,
    sd: &ScaledDataset,
    machines: usize,
    system: SystemKind,
    paper: PaperTask,
) {
    let cluster = sd.cluster_for(ClusterSpec::galaxy(machines), system);
    let results: Vec<_> = BATCH_AXIS
        .iter()
        .map(|&b| run_cell(sd, &cluster, system, paper, b))
        .collect();
    let times: Vec<f64> = results.iter().map(|r| r.plot_time().as_secs()).collect();
    for (i, &b) in BATCH_AXIS.iter().enumerate() {
        t.row(row!(
            label,
            paper.paper_workload(),
            machines,
            system.name(),
            b,
            fmt_outcome(&results[i]),
            mark_optimal(&times, i)
        ));
    }
    let monotone = Series::with_values("", times).is_monotone_non_decreasing();
    summary.push((label.to_string(), monotone));
}

fn main() {
    let dblp = ScaledDataset::load(Dataset::Dblp);
    let mut summary = Vec::new();
    let mut t = Table::new(
        "Figure 5: various experiments on Galaxy-27",
        &[
            "panel",
            "Workload",
            "#Machines",
            "System",
            "batches",
            "time (s)",
            "optimal",
        ],
    );

    // (a) Varying task.
    sweep_panel(
        &mut t,
        &mut summary,
        "a:BPPR",
        &dblp,
        27,
        SystemKind::PregelPlus,
        PaperTask::Bppr(34560),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "a:MSSP",
        &dblp,
        27,
        SystemKind::PregelPlus,
        PaperTask::Mssp(3456),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "a:BKHS",
        &dblp,
        27,
        SystemKind::PregelPlus,
        PaperTask::Bkhs(25600, 2),
    );

    // (b) Varying dataset.
    sweep_panel(
        &mut t,
        &mut summary,
        "b:DBLP",
        &dblp,
        27,
        SystemKind::PregelPlus,
        PaperTask::Bppr(34560),
    );
    let webst = ScaledDataset::load(Dataset::WebSt);
    sweep_panel(
        &mut t,
        &mut summary,
        "b:Web-St",
        &webst,
        27,
        SystemKind::PregelPlus,
        PaperTask::Bppr(69120),
    );
    let lj = ScaledDataset::load(Dataset::LiveJournal);
    sweep_panel(
        &mut t,
        &mut summary,
        "b:LiveJournal",
        &lj,
        27,
        SystemKind::PregelPlus,
        PaperTask::Bppr(8192),
    );
    let orkut = ScaledDataset::load(Dataset::Orkut);
    sweep_panel(
        &mut t,
        &mut summary,
        "b:Orkut",
        &orkut,
        27,
        SystemKind::PregelPlus,
        PaperTask::Bppr(3000),
    );
    let twitter = ScaledDataset::load(Dataset::Twitter);
    sweep_panel(
        &mut t,
        &mut summary,
        "b:Twitter",
        &twitter,
        27,
        SystemKind::PregelPlus,
        PaperTask::Bppr(128),
    );
    let friendster = ScaledDataset::load(Dataset::Friendster);
    sweep_panel(
        &mut t,
        &mut summary,
        "b:Friendster",
        &friendster,
        27,
        SystemKind::PregelPlus,
        PaperTask::Bppr(16),
    );

    // (c) Varying #machines.
    sweep_panel(
        &mut t,
        &mut summary,
        "c:8m",
        &dblp,
        8,
        SystemKind::PregelPlus,
        PaperTask::Bppr(10240),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "c:16m",
        &dblp,
        16,
        SystemKind::PregelPlus,
        PaperTask::Bppr(20480),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "c:27m",
        &dblp,
        27,
        SystemKind::PregelPlus,
        PaperTask::Bppr(34560),
    );

    // (d) Varying system.
    sweep_panel(
        &mut t,
        &mut summary,
        "d:Pregel+",
        &dblp,
        27,
        SystemKind::PregelPlus,
        PaperTask::Bppr(34560),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "d:Giraph",
        &dblp,
        27,
        SystemKind::Giraph,
        PaperTask::Bppr(6400),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "d:Giraph(async)",
        &dblp,
        27,
        SystemKind::GiraphAsync,
        PaperTask::Bppr(6400),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "d:Pregel+(mirror)",
        &dblp,
        27,
        SystemKind::PregelPlusMirror,
        PaperTask::Bppr(256),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "d:GraphD",
        &dblp,
        27,
        SystemKind::GraphD,
        PaperTask::Bppr(5120),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "d:GraphLab",
        &dblp,
        27,
        SystemKind::GraphLab,
        PaperTask::Bppr(1600),
    );

    emit("fig05", &t);

    let mut s = Table::new(
        "Figure 5 summary: times mostly NOT monotone in #batches",
        &["setting", "monotone increasing?"],
    );
    let mut monotone_count = 0;
    for (label, mono) in &summary {
        if *mono {
            monotone_count += 1;
        }
        s.row(row!(
            label.clone(),
            if *mono { "monotone" } else { "not monotone" }
        ));
    }
    emit("fig05_summary", &s);
    let _ = monotone_count;
    // The paper's summary panel highlights: Twitter(128) and
    // Friendster(16) are the monotone cases; the heavy BPPR defaults
    // are not. (Our cost model leaves several additional light 27-
    // machine settings without memory pressure — flat/monotone lines —
    // which EXPERIMENTS.md records as a known deviation.)
    let get = |label: &str| {
        summary
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("missing {label}"))
            .1
    };
    for must_dip in [
        "a:BPPR",
        "b:DBLP",
        "b:Web-St",
        "c:8m",
        "c:16m",
        "c:27m",
        "d:Pregel+",
        "d:GraphD",
    ] {
        assert!(!get(must_dip), "{must_dip} should be non-monotone");
    }
    for flat in ["b:Twitter", "b:Friendster"] {
        assert!(get(flat), "{flat} should be monotone (paper summary)");
    }
}
