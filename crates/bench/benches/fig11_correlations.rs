//! Figure 11 — correlations of different factors in a typical
//! synchronous VC-system.
//!
//! The paper's diagram is qualitative; we reproduce it quantitatively:
//! Pearson correlations measured over batch sweeps confirm each arrow —
//! workload → message congestion (+), congestion → memory used (+,
//! non-out-of-core), memory → running time (+), #machines → congestion
//! per machine (−), congestion → disk utilization (+, out-of-core).

use mtvc_bench::{run_cell, PaperTask, ScaledDataset};
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Dataset;
use mtvc_metrics::{row, Table};
use mtvc_systems::SystemKind;

/// Ranks with average ties.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap());
    let mut r = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0;
        for &k in &idx[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

/// Spearman rank correlation — robust to the monotone-but-saturating
/// relationships (disk utilization pins at 100%) in these sweeps.
fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

fn main() {
    let sd = ScaledDataset::load(Dataset::Dblp);
    let cluster = sd.cluster(ClusterSpec::galaxy8());

    // Sample grid over workloads (in-memory Pregel+, 2 batches fixed).
    let workloads = [512u64, 1024, 2048, 4096, 6144, 8192];
    let mut w_ax = Vec::new();
    let mut congestion = Vec::new();
    let mut memory = Vec::new();
    let mut time = Vec::new();
    for &w in &workloads {
        let r = run_cell(&sd, &cluster, SystemKind::PregelPlus, PaperTask::Bppr(w), 2);
        w_ax.push(w as f64);
        congestion.push(r.stats.congestion());
        memory.push(r.stats.peak_memory.as_f64());
        time.push(r.plot_time().as_secs());
    }

    // Machines axis (same workload, more machines => less congestion
    // per machine; we use peak memory as its observable).
    let machine_axis = [2usize, 4, 8, 16];
    let mut m_ax = Vec::new();
    let mut mem_per_machine = Vec::new();
    for &m in &machine_axis {
        let c = sd.cluster(ClusterSpec::galaxy(m));
        let r = run_cell(&sd, &c, SystemKind::PregelPlus, PaperTask::Bppr(2048), 2);
        m_ax.push(m as f64);
        mem_per_machine.push(r.stats.peak_memory.as_f64());
    }

    // Out-of-core: congestion vs disk utilization (GraphD, varying
    // batches varies per-round congestion).
    let mut cong_ooc = Vec::new();
    let mut util_ooc = Vec::new();
    for &b in &[1usize, 2, 4, 8, 16] {
        let r = run_cell(&sd, &cluster, SystemKind::GraphD, PaperTask::Bppr(4096), b);
        cong_ooc.push(r.stats.congestion());
        util_ooc.push(r.stats.max_disk_utilization);
    }

    let rows: Vec<(&str, f64, f64)> = vec![
        (
            "workload -> message congestion",
            spearman(&w_ax, &congestion),
            0.9,
        ),
        (
            "congestion -> memory used (non-ooc)",
            spearman(&congestion, &memory),
            0.9,
        ),
        ("memory used -> running time", spearman(&memory, &time), 0.7),
        (
            "#machines -> memory per machine",
            spearman(&m_ax, &mem_per_machine),
            -0.7,
        ),
        (
            "congestion -> disk utilization (ooc)",
            spearman(&cong_ooc, &util_ooc),
            0.6,
        ),
    ];
    let mut t = Table::new(
        "Figure 11: measured correlations behind the factor diagram",
        &["edge", "Spearman r", "expected sign"],
    );
    for (label, r, threshold) in &rows {
        t.row(row!(
            *label,
            format!("{r:+.3}"),
            if *threshold > 0.0 { "+" } else { "-" }
        ));
        if *threshold > 0.0 {
            assert!(r >= threshold, "{label}: r={r} below {threshold}");
        } else {
            assert!(r <= threshold, "{label}: r={r} above {threshold}");
        }
    }
    mtvc_bench::emit("fig11", &t);
}
