//! Table 1 — experiment settings: datasets, clusters, systems.
//!
//! Prints the paper's inventory side by side with the scaled synthetic
//! stand-ins this reproduction actually runs on.

use mtvc_bench::{emit, ScaledDataset};
use mtvc_cluster::ClusterSpec;
use mtvc_graph::{Dataset, DegreeStats};
use mtvc_metrics::{row, Table};
use mtvc_systems::SystemKind;

fn main() {
    let mut data = Table::new(
        "Table 1 (datasets): paper statistics vs scaled stand-ins",
        &[
            "Name",
            "paper #Nodes",
            "paper #Edges",
            "paper davg",
            "sigma",
            "gen #Nodes",
            "gen #Edges",
            "gen davg",
            "gen dmax",
        ],
    );
    for d in Dataset::ALL {
        let info = d.info();
        let sd = ScaledDataset::load(d);
        let stats = DegreeStats::of(&sd.graph);
        data.row(row!(
            info.name,
            info.paper_nodes,
            info.paper_edges,
            info.paper_avg_degree,
            sd.scale,
            stats.num_vertices,
            stats.num_edges,
            format!("{:.1}", stats.avg_degree),
            stats.max_degree
        ));
    }
    emit("table1_datasets", &data);

    let mut clusters = Table::new(
        "Table 1 (clusters)",
        &["Name", "#Machines", "Memory", "Cores", "Disk", "Type"],
    );
    for c in [
        ClusterSpec::galaxy8(),
        ClusterSpec::galaxy27(),
        ClusterSpec::docker32(),
    ] {
        clusters.row(row!(
            c.name.clone(),
            c.machines,
            format!("{}x{}", c.machine.memory, c.machines),
            c.machine.cores,
            format!("{:?}", c.machine.disk),
            if c.machine.credit_rate > 0.0 {
                "cloud"
            } else {
                "local"
            }
        ));
    }
    emit("table1_clusters", &clusters);

    let mut systems = Table::new(
        "Table 1 (systems)",
        &[
            "Name",
            "Synchronous",
            "Out-of-core",
            "Combiner",
            "Broadcast/mirror",
        ],
    );
    let spec = mtvc_cluster::MachineSpec::galaxy();
    for s in SystemKind::ALL {
        let p = s.profile(&spec);
        systems.row(row!(
            s.name(),
            match p.sync {
                mtvc_engine::SyncMode::Synchronous => "yes",
                mtvc_engine::SyncMode::PartialAsync => "partial",
                mtvc_engine::SyncMode::Asynchronous => "no",
            },
            if s.is_out_of_core() { "yes" } else { "no" },
            if p.combiner { "yes" } else { "no" },
            if s.is_broadcast() { "yes" } else { "no" }
        ));
    }
    emit("table1_systems", &systems);
}
