//! Figure 2 — Full-Parallelism may be sub-optimal (DBLP, Galaxy-8).
//!
//! Three (workload, system) settings from the paper:
//! (10240, Pregel+), (6144, GraphD), (160, Pregel+(mirror)),
//! each swept over 1–16 batches. The reproduced claim: the 1-batch
//! (Full-Parallelism) bar is not the minimum for any of the settings.

use mtvc_bench::{emit, fmt_outcome, mark_optimal, run_cell, PaperTask, ScaledDataset, BATCH_AXIS};
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Dataset;
use mtvc_metrics::{row, Table};
use mtvc_systems::SystemKind;

fn main() {
    let sd = ScaledDataset::load(Dataset::Dblp);
    let settings: [(u64, SystemKind); 3] = [
        (10240, SystemKind::PregelPlus),
        (6144, SystemKind::GraphD),
        (160, SystemKind::PregelPlusMirror),
    ];
    let mut t = Table::new(
        "Figure 2: Full-Parallelism may be sub-optimal (DBLP, Galaxy-8)",
        &["Workload", "System", "batches", "time (s)", "optimal"],
    );
    for (w, system) in settings {
        let cluster = sd.cluster_for(ClusterSpec::galaxy8(), system);
        let results: Vec<_> = BATCH_AXIS
            .iter()
            .map(|&b| run_cell(&sd, &cluster, system, PaperTask::Bppr(w), b))
            .collect();
        let times: Vec<f64> = results.iter().map(|r| r.plot_time().as_secs()).collect();
        for (i, &b) in BATCH_AXIS.iter().enumerate() {
            t.row(row!(
                w,
                system.name(),
                b,
                fmt_outcome(&results[i]),
                mark_optimal(&times, i)
            ));
        }
        assert!(
            times[0] > times.iter().cloned().fold(f64::INFINITY, f64::min),
            "Figure 2 claim violated: Full-Parallelism should not be optimal for {system} W={w}"
        );
    }
    emit("fig02", &t);
}
