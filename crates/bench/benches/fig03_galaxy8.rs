//! Figure 3 — batch sweeps on Galaxy-8: varying task, dataset,
//! #machines, and system (defaults: DBLP, BPPR, Pregel+).
//!
//! Each panel sweeps 1–16 batches. The right-hand summary of the paper
//! is reproduced as a "monotone?" column: running times mostly are NOT
//! increasing with the number of batches (only genuinely light settings
//! are monotone).

use mtvc_bench::{emit, fmt_outcome, mark_optimal, run_cell, PaperTask, ScaledDataset, BATCH_AXIS};
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Dataset;
use mtvc_metrics::{row, Series, Table};
use mtvc_systems::SystemKind;

fn sweep_panel(
    t: &mut Table,
    summary: &mut Vec<(String, bool)>,
    label: &str,
    sd: &ScaledDataset,
    machines: usize,
    system: SystemKind,
    paper: PaperTask,
) {
    let cluster = sd.cluster_for(ClusterSpec::galaxy(machines), system);
    let results: Vec<_> = BATCH_AXIS
        .iter()
        .map(|&b| run_cell(sd, &cluster, system, paper, b))
        .collect();
    let times: Vec<f64> = results.iter().map(|r| r.plot_time().as_secs()).collect();
    for (i, &b) in BATCH_AXIS.iter().enumerate() {
        t.row(row!(
            label,
            paper.paper_workload(),
            machines,
            system.name(),
            b,
            fmt_outcome(&results[i]),
            mark_optimal(&times, i)
        ));
    }
    let monotone = Series::with_values("", times.clone()).is_monotone_non_decreasing();
    summary.push((
        format!(
            "{label} ({}, {machines}, {})",
            paper.paper_workload(),
            system.name()
        ),
        monotone,
    ));
}

fn main() {
    let dblp = ScaledDataset::load(Dataset::Dblp);
    let mut summary = Vec::new();
    let mut t = Table::new(
        "Figure 3: various experiments on Galaxy-8",
        &[
            "panel",
            "Workload",
            "#Machines",
            "System",
            "batches",
            "time (s)",
            "optimal",
        ],
    );

    // (a) Varying task.
    sweep_panel(
        &mut t,
        &mut summary,
        "a:BPPR",
        &dblp,
        8,
        SystemKind::PregelPlus,
        PaperTask::Bppr(12288),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "a:MSSP",
        &dblp,
        8,
        SystemKind::PregelPlus,
        PaperTask::Mssp(4096),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "a:BKHS",
        &dblp,
        8,
        SystemKind::PregelPlus,
        PaperTask::Bkhs(65536, 2),
    );

    // (b) Varying dataset.
    sweep_panel(
        &mut t,
        &mut summary,
        "b:DBLP",
        &dblp,
        8,
        SystemKind::PregelPlus,
        PaperTask::Bppr(10240),
    );
    let webst = ScaledDataset::load(Dataset::WebSt);
    sweep_panel(
        &mut t,
        &mut summary,
        "b:Web-St",
        &webst,
        8,
        SystemKind::PregelPlus,
        PaperTask::Bppr(20480),
    );
    let orkut = ScaledDataset::load(Dataset::Orkut);
    sweep_panel(
        &mut t,
        &mut summary,
        "b:Orkut",
        &orkut,
        8,
        SystemKind::PregelPlus,
        PaperTask::Bppr(512),
    );

    // (c) Varying #machines.
    sweep_panel(
        &mut t,
        &mut summary,
        "c:2m",
        &dblp,
        2,
        SystemKind::PregelPlus,
        PaperTask::Bppr(2048),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "c:4m",
        &dblp,
        4,
        SystemKind::PregelPlus,
        PaperTask::Bppr(5120),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "c:8m",
        &dblp,
        8,
        SystemKind::PregelPlus,
        PaperTask::Bppr(10240),
    );

    // (d) Varying system.
    sweep_panel(
        &mut t,
        &mut summary,
        "d:Pregel+",
        &dblp,
        8,
        SystemKind::PregelPlus,
        PaperTask::Bppr(10240),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "d:Giraph",
        &dblp,
        8,
        SystemKind::Giraph,
        PaperTask::Bppr(2048),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "d:Giraph(async)",
        &dblp,
        8,
        SystemKind::GiraphAsync,
        PaperTask::Bppr(1024),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "d:Pregel+(mirror)",
        &dblp,
        8,
        SystemKind::PregelPlusMirror,
        PaperTask::Bppr(160),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "d:GraphD",
        &dblp,
        8,
        SystemKind::GraphD,
        PaperTask::Bppr(2048),
    );
    sweep_panel(
        &mut t,
        &mut summary,
        "d:GraphLab",
        &dblp,
        8,
        SystemKind::GraphLab,
        PaperTask::Bppr(20480),
    );

    emit("fig03", &t);

    let mut s = Table::new(
        "Figure 3 summary: times mostly NOT monotone in #batches",
        &["setting", "monotone increasing?"],
    );
    let mut monotone_count = 0;
    for (label, mono) in &summary {
        if *mono {
            monotone_count += 1;
        }
        s.row(row!(
            label.clone(),
            if *mono { "monotone" } else { "not monotone" }
        ));
    }
    emit("fig03_summary", &s);
    assert!(
        monotone_count * 2 < summary.len(),
        "most settings should be non-monotone, got {monotone_count}/{}",
        summary.len()
    );
}
