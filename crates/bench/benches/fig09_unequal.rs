//! Figure 9 — unequal batches are beneficial (BPPR on DBLP).
//!
//! A fixed workload splits into two batches with Δ = W₁ − W₂ swept from
//! strongly-second-heavy to strongly-first-heavy. Reproduced claims:
//! the best Δ is positive (W₁ > W₂, because batch 2 carries batch 1's
//! residual memory), and the combined two-batch time exceeds the sum of
//! the two batches run alone.

use mtvc_bench::{emit, ScaledDataset, SEED};
use mtvc_cluster::ClusterSpec;
use mtvc_core::unequal::two_batch_delta_sweep;
use mtvc_core::Task;
use mtvc_graph::Dataset;
use mtvc_metrics::{row, Table};
use mtvc_systems::SystemKind;

fn panel(label: &str, machines: usize, total: u64, deltas: &[i64]) {
    let sd = ScaledDataset::load(Dataset::Dblp);
    let cluster = sd.cluster(ClusterSpec::galaxy(machines));
    let points = two_batch_delta_sweep(
        &sd.graph,
        Task::bppr(total),
        SystemKind::PregelPlus,
        &cluster,
        deltas,
        SEED,
    );
    let mut t = Table::new(
        format!("Figure 9{label}: unequal batches, BPPR total={total}, {machines} machines"),
        &[
            "delta=W1-W2",
            "two-batch (s)",
            "1st alone (s)",
            "2nd alone (s)",
            "stacked (s)",
        ],
    );
    for p in &points {
        t.row(row!(
            p.delta,
            format!("{:.1}", p.combined.plot_time().as_secs()),
            format!("{:.1}", p.first_alone.plot_time().as_secs()),
            format!("{:.1}", p.second_alone.plot_time().as_secs()),
            format!("{:.1}", p.stacked_time())
        ));
    }
    emit(&format!("fig09{label}"), &t);

    // Optimum at W1 > W2.
    let best = points
        .iter()
        .min_by(|a, b| {
            a.combined
                .plot_time()
                .as_secs()
                .partial_cmp(&b.combined.plot_time().as_secs())
                .unwrap()
        })
        .unwrap();
    println!("panel {label}: best delta = {}", best.delta);
    assert!(
        best.delta >= 0,
        "optimal split should put more work in batch 1 (got delta {})",
        best.delta
    );
    // Combined execution >= stacked stand-alone execution (residual cost).
    let mid = points.iter().find(|p| p.delta == 0).unwrap();
    assert!(
        mid.combined.plot_time().as_secs() >= mid.stacked_time() * 0.99,
        "two-batch run should not beat the two batches run alone"
    );
}

fn main() {
    panel(
        "a",
        8,
        12800,
        &[-10240, -7680, -5120, -2560, 0, 2560, 5120, 7680, 10240],
    );
    panel(
        "b",
        27,
        40960,
        &[-32768, -24576, -16384, -8192, 0, 8192, 16384, 24576, 32768],
    );
}
