//! End-to-end round-loop microbenchmark: compute + route per round,
//! current engine hot path (sender combining + grouped delivery) vs the
//! pre-PR replica (merge-stage sort combining + counting-sort regroup +
//! per-delivery clones), on MSSP and BPPR with combining on and off.
//!
//! Single-threaded by design — the delta isolates the envelope-path
//! rework, not thread scaling. `--test` runs every routine once for CI
//! smoke. `bench_pr3` (a bin in this crate) runs the same drivers under
//! a counting allocator and emits `BENCH_pr3.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use mtvc_bench::round_loop::{drive_current, drive_legacy, drive_slab_recycled};
use mtvc_engine::{LocalIndex, SlabRecycler};
use mtvc_graph::partition::{HashPartitioner, Partitioner};
use mtvc_graph::{generators, VertexId};
use mtvc_tasks::bppr::{BpprProgram, SourceSet};
use mtvc_tasks::mssp::{MsspProgram, MsspSlabProgram};
use std::hint::black_box;

const VERTICES: usize = 20_000;
const EDGES: usize = 80_000;
const WORKERS: usize = 4;
const SEED: u64 = 0x9E3;

fn bench_round_loop(c: &mut Criterion) {
    let g = generators::power_law(VERTICES, EDGES, 2.3, 42);
    let part = HashPartitioner::default().partition(&g, WORKERS);
    let locals = LocalIndex::build(&part);

    let mssp = MsspProgram::new(
        (0..16u32)
            .map(|q| (q * 997) % VERTICES as VertexId)
            .collect(),
    );
    let bppr_sources: Vec<VertexId> = (0..256u32)
        .map(|s| (s * 613) % VERTICES as VertexId)
        .collect();
    let bppr = BpprProgram::new(8, 0.2).with_sources(SourceSet::subset(bppr_sources));

    for combine in [false, true] {
        let tag = if combine { "combine" } else { "nocombine" };
        c.bench_function(&format!("round_loop_mssp_current_{tag}"), |b| {
            b.iter(|| {
                black_box(drive_current(
                    &mssp,
                    &g,
                    &part,
                    &locals,
                    combine,
                    SEED,
                    |_| {},
                ))
            })
        });
        c.bench_function(&format!("round_loop_mssp_legacy_{tag}"), |b| {
            b.iter(|| {
                black_box(drive_legacy(
                    &mssp,
                    &g,
                    &part,
                    &locals,
                    combine,
                    SEED,
                    |_| {},
                ))
            })
        });
        c.bench_function(&format!("round_loop_bppr_current_{tag}"), |b| {
            b.iter(|| {
                black_box(drive_current(
                    &bppr,
                    &g,
                    &part,
                    &locals,
                    combine,
                    SEED,
                    |_| {},
                ))
            })
        });
        c.bench_function(&format!("round_loop_bppr_legacy_{tag}"), |b| {
            b.iter(|| {
                black_box(drive_legacy(
                    &bppr,
                    &g,
                    &part,
                    &locals,
                    combine,
                    SEED,
                    |_| {},
                ))
            })
        });
    }
}

/// State-layout cells (PR 5): dense slab rows vs hash-map state on the
/// same hot path, swept over the batch width. Combiner off so the
/// receiver's state phase — the thing the layouts differ in — is the
/// bottleneck; `bench_pr5` (a bin in this crate) runs the same cells
/// under a counting allocator and emits `BENCH_pr5.json`.
fn bench_state_slab(c: &mut Criterion) {
    let g = generators::power_law(VERTICES, EDGES, 2.3, 42);
    let part = HashPartitioner::default().partition(&g, WORKERS);
    let locals = LocalIndex::build(&part);

    for width in [1usize, 8, 64] {
        let sources: Vec<VertexId> = (0..width as u32)
            .map(|q| (q * 997) % VERTICES as VertexId)
            .collect();
        let hashmap = MsspProgram::new(sources.clone());
        let slab = MsspSlabProgram::new(sources);
        let recycler: SlabRecycler<u64> = SlabRecycler::new();
        c.bench_function(&format!("state_slab_mssp_slab_w{width}"), |b| {
            b.iter(|| {
                black_box(drive_slab_recycled(
                    &slab,
                    &recycler,
                    &g,
                    &part,
                    &locals,
                    false,
                    SEED,
                    |_| {},
                ))
            })
        });
        c.bench_function(&format!("state_slab_mssp_hashmap_w{width}"), |b| {
            b.iter(|| {
                black_box(drive_current(
                    &hashmap,
                    &g,
                    &part,
                    &locals,
                    false,
                    SEED,
                    |_| {},
                ))
            })
        });
    }
}

criterion_group!(benches, bench_round_loop, bench_state_slab);
criterion_main!(benches);
