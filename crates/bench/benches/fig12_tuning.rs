//! Figure 12 — the impact of tuning Pregel+ with the paper's cost-based
//! framework (§5), on the DBLP stand-in.
//!
//! For BPPR and MSSP on 2/4/8 machines across workload sweeps, the
//! Optimized schedule (trained memory model + Equations 1–6) is
//! compared with Full-Parallelism. Reproduced claims: Optimized stays
//! stable as the workload grows while Full-Parallelism blows up past
//! the memory threshold, and the tuned batch workloads decrease
//! monotonically (the §5 example division [2747, 1388, 644, 266, 75]).

use mtvc_bench::{emit, fmt_outcome, PaperTask, ScaledDataset, SEED};
use mtvc_cluster::ClusterSpec;
use mtvc_core::{run_job, BatchSchedule, JobSpec};
use mtvc_graph::Dataset;
use mtvc_metrics::{row, Table};
use mtvc_systems::SystemKind;
use mtvc_tune::{tune, TunerConfig};

fn panel(
    t: &mut Table,
    sd: &ScaledDataset,
    label: &str,
    machines: usize,
    tasks: &[PaperTask],
) -> (usize, usize) {
    let cluster = sd.cluster(ClusterSpec::galaxy(machines));
    let cfg = TunerConfig {
        seed: SEED,
        ..TunerConfig::default()
    };
    let mut wins = 0;
    let mut total = 0;
    for &paper in tasks {
        let task = sd.task(paper);
        let fp = run_job(
            &sd.graph,
            &JobSpec::new(
                task,
                SystemKind::PregelPlus,
                cluster.clone(),
                BatchSchedule::full_parallelism(task.workload()),
            )
            .with_seed(SEED),
        );
        let (schedule_str, opt_str, opt_secs) =
            match tune(&sd.graph, task, SystemKind::PregelPlus, &cluster, &cfg) {
                Ok(tuned) => {
                    let spec = JobSpec::new(
                        task,
                        SystemKind::PregelPlus,
                        cluster.clone(),
                        tuned.schedule.clone(),
                    )
                    .with_seed(SEED);
                    let r = run_job(&sd.graph, &spec);
                    (
                        format!("{:?}", tuned.schedule.batches()),
                        fmt_outcome(&r),
                        r.plot_time().as_secs(),
                    )
                }
                Err(e) => (format!("(tuning failed: {e})"), "-".into(), f64::INFINITY),
            };
        total += 1;
        if opt_secs <= fp.plot_time().as_secs() * 1.05 {
            wins += 1;
        }
        t.row(row!(
            label,
            paper.name(),
            paper.paper_workload(),
            fmt_outcome(&fp),
            opt_str,
            schedule_str
        ));
    }
    (wins, total)
}

fn main() {
    let sd = ScaledDataset::load(Dataset::Dblp);
    let mut t = Table::new(
        "Figure 12: Full-Parallelism vs Optimized (tuned) batch schemes",
        &[
            "panel",
            "task",
            "workload",
            "Full-Parallelism (s)",
            "Optimized (s)",
            "schedule",
        ],
    );
    let mut wins = 0;
    let mut total = 0;
    let panels: [(&str, usize, Vec<PaperTask>); 6] = [
        (
            "a:BPPR 2m",
            2,
            vec![1280, 1536, 1792, 2048, 2304, 2560, 3072]
                .into_iter()
                .map(PaperTask::Bppr)
                .collect(),
        ),
        (
            "b:BPPR 4m",
            4,
            vec![3584, 4096, 4608, 5120]
                .into_iter()
                .map(PaperTask::Bppr)
                .collect(),
        ),
        (
            "c:BPPR 8m",
            8,
            vec![4096, 5120, 6144, 7168, 8192]
                .into_iter()
                .map(PaperTask::Bppr)
                .collect(),
        ),
        (
            "d:MSSP 2m",
            2,
            vec![128, 136, 144, 152]
                .into_iter()
                .map(PaperTask::Mssp)
                .collect(),
        ),
        (
            "e:MSSP 4m",
            4,
            vec![384, 416, 448, 480, 512]
                .into_iter()
                .map(PaperTask::Mssp)
                .collect(),
        ),
        (
            "f:MSSP 8m",
            8,
            vec![832, 896, 960, 1024]
                .into_iter()
                .map(PaperTask::Mssp)
                .collect(),
        ),
    ];
    for (label, machines, tasks) in &panels {
        let (w, n) = panel(&mut t, &sd, label, *machines, tasks);
        wins += w;
        total += n;
    }
    emit("fig12", &t);
    println!("Optimized within 5% of (or better than) Full-Parallelism in {wins}/{total} settings");
    assert!(
        wins * 10 >= total * 7,
        "Optimized should match or beat Full-Parallelism in most settings ({wins}/{total})"
    );

    // The §5 example: BPPR workload 5120 on 4 machines yields a
    // monotone-decreasing schedule like [2747, 1388, 644, 266, 75].
    let cluster = sd.cluster(ClusterSpec::galaxy(4));
    let cfg = TunerConfig {
        seed: SEED,
        ..TunerConfig::default()
    };
    if let Ok(tuned) = tune(
        &sd.graph,
        sd.task(PaperTask::Bppr(5120)),
        SystemKind::PregelPlus,
        &cluster,
        &cfg,
    ) {
        let batches = tuned.schedule.batches().to_vec();
        println!("tuned schedule for BPPR(5120)@4m: {batches:?}");
        assert!(
            batches.windows(2).all(|w| w[0] >= w[1]),
            "tuned batch workloads should decrease monotonically: {batches:?}"
        );
    }
}
