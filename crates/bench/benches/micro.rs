//! Criterion microbenchmarks for the engine's hot paths: one BSP round
//! of message routing + compute, the aggregated-walk samplers, graph
//! generation/partitioning, and the LMA fitter.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mtvc_cluster::ClusterSpec;
use mtvc_engine::sampling::{binomial, multinomial_uniform};
use mtvc_engine::{EngineConfig, Runner, SystemProfile};
use mtvc_graph::partition::{HashPartitioner, Partitioner};
use mtvc_graph::{generators, Dataset};
use mtvc_metrics::SimTime;
use mtvc_tasks::BpprProgram;
use mtvc_tune::fit_exponential;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_samplers(c: &mut Criterion) {
    c.bench_function("binomial_small_n", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| black_box(binomial(&mut rng, 40, 0.2)))
    });
    c.bench_function("binomial_large_n", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| black_box(binomial(&mut rng, 100_000, 0.2)))
    });
    c.bench_function("multinomial_spread_64_over_8", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| {
            let mut acc = 0u64;
            multinomial_uniform(&mut rng, 64, 8, |_, c| acc += c);
            black_box(acc)
        })
    });
}

fn bench_engine_round(c: &mut Criterion) {
    let g = generators::power_law(2000, 8000, 2.4, 7);
    c.bench_function("bppr_w16_full_run_2000v", |b| {
        b.iter_batched(
            || {
                let mut cfg =
                    EngineConfig::new(ClusterSpec::galaxy(4), SystemProfile::base("bench"));
                cfg.cutoff = SimTime::secs(1e12);
                Runner::new(&g, &HashPartitioner::default(), cfg)
            },
            |runner| black_box(runner.run(&BpprProgram::new(16, 0.2)).stats.rounds),
            BatchSize::PerIteration,
        )
    });
}

fn bench_graph(c: &mut Criterion) {
    c.bench_function("generate_dblp_like", |b| {
        b.iter(|| black_box(Dataset::Dblp.generate(1024).num_edges()))
    });
    let g = Dataset::Dblp.generate(256);
    c.bench_function("hash_partition_8", |b| {
        b.iter(|| black_box(HashPartitioner::default().partition(&g, 8).num_workers()))
    });
}

fn bench_lma(c: &mut Criterion) {
    let xs: Vec<f64> = (1..=10).map(|r| (1u64 << r) as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| 2.5 * x.powf(1.2) + 40.0).collect();
    c.bench_function("lma_fit_10_points", |b| {
        b.iter(|| black_box(fit_exponential(&xs, &ys, 1).unwrap().b))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_samplers, bench_engine_round, bench_graph, bench_lma
);
criterion_main!(benches);
