//! Figure 8 — different tasks on the Twitter stand-in (Docker-32).
//!
//! The reproduced insight (§4.5): with a huge graph, BPPR's residual
//! memory (intermediate walk results ∝ nodes × per-batch workload)
//! makes Full-Parallelism optimal for a small workload — the residual
//! peak and the message peak do not overlap in a single batch — while
//! MSSP (small residual) still prefers batching.

use mtvc_bench::{emit, fmt_outcome, mark_optimal, run_cell, PaperTask, ScaledDataset, BATCH_AXIS};
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Dataset;
use mtvc_metrics::{row, Table};
use mtvc_systems::SystemKind;

fn main() {
    let sd = ScaledDataset::load(Dataset::Twitter);
    let cluster = sd.cluster(ClusterSpec::docker32());
    let tasks = [
        PaperTask::Bppr(128),
        PaperTask::Mssp(16),
        PaperTask::Bkhs(4096, 2),
    ];
    let mut t = Table::new(
        "Figure 8: different tasks on Twitter (Docker-32)",
        &[
            "task",
            "Workload",
            "batches",
            "time (s)",
            "residual after (max/machine)",
            "optimal",
        ],
    );
    let mut optima = Vec::new();
    for paper in tasks {
        let results: Vec<_> = BATCH_AXIS
            .iter()
            .map(|&b| run_cell(&sd, &cluster, SystemKind::PregelPlus, paper, b))
            .collect();
        let times: Vec<f64> = results.iter().map(|r| r.plot_time().as_secs()).collect();
        let best = BATCH_AXIS[times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0];
        optima.push((paper.name(), best));
        for (i, &b) in BATCH_AXIS.iter().enumerate() {
            let resid = results[i]
                .per_batch
                .last()
                .map(|x| x.residual_max_worker)
                .unwrap_or(0);
            t.row(row!(
                paper.name(),
                paper.paper_workload(),
                b,
                fmt_outcome(&results[i]),
                mtvc_metrics::Bytes(resid),
                mark_optimal(&times, i)
            ));
        }
    }
    emit("fig08", &t);
    println!("optima: {optima:?}");
    assert_eq!(
        optima[0],
        ("BPPR", 1),
        "BPPR(128) on Twitter should favour Full-Parallelism"
    );
    assert!(optima[1].1 > 1, "MSSP on Twitter should favour batching");
}
