//! Routing-pipeline microbenchmark: serial reference `route` vs the
//! two-stage [`RouteGrid`] on a persistent [`WorkerPool`], with and
//! without combining.
//!
//! Traffic is one synthetic "congestion round" over a 100k-vertex
//! power-law graph on 4 workers: every vertex sends to each of its
//! out-neighbors (keyed by source, so combining has real work to do).
//! The grid variant reuses its shard/scratch buffers across iterations,
//! exactly as `Runner::run` does across rounds, so the numbers include
//! the zero-churn benefit.
//!
//! The ≥2× shard/merge speedup needs ≥4 hardware cores; on fewer cores
//! the pooled variant measures pipeline overhead instead (lanes time-
//! slice a single core). `--test` runs every routine once for CI smoke.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mtvc_engine::{route, Envelope, Inbox, LocalIndex, Message, Outbox, RouteGrid, WorkerPool};
use mtvc_graph::partition::{HashPartitioner, Partition, Partitioner};
use mtvc_graph::{generators, Graph};
use std::hint::black_box;

const VERTICES: usize = 100_000;
const EDGES: usize = 400_000;
const WORKERS: usize = 4;
const MSG_BYTES: u64 = 16;

/// Distance-style payload: combines per source vertex.
#[derive(Clone, Debug)]
struct Hop {
    source: u32,
    dist: u32,
}

impl Message for Hop {
    fn combine_key(&self) -> Option<u64> {
        Some(self.source as u64)
    }
    fn merge(&mut self, other: &Self) {
        self.dist = self.dist.min(other.dist);
    }
}

/// One full congestion round of traffic: every vertex messages all its
/// out-neighbors, bucketed into its owner's outbox. Deterministic, so
/// every iteration routes identical traffic.
fn build_outboxes(g: &Graph, part: &Partition) -> Vec<Outbox<Hop>> {
    let mut outboxes: Vec<Outbox<Hop>> = (0..part.num_workers()).map(|_| Outbox::new()).collect();
    for v in g.vertices() {
        let ob = &mut outboxes[part.owner_of(v) as usize];
        for &t in g.neighbors(v) {
            ob.sends.push(Envelope::new(
                t,
                Hop {
                    source: v % 64, // 64 distinct keys per dest: combining collapses most envelopes
                    dist: v.wrapping_add(t),
                },
                1,
            ));
        }
    }
    outboxes
}

fn bench_router(c: &mut Criterion) {
    let g = generators::power_law(VERTICES, EDGES, 2.3, 42);
    let part = HashPartitioner::default().partition(&g, WORKERS);
    let locals = LocalIndex::build(&part);
    let outboxes = build_outboxes(&g, &part);
    let envelopes: usize = outboxes.iter().map(|o| o.sends.len()).sum();
    println!(
        "routing {envelopes} envelopes over {VERTICES} vertices, {WORKERS} workers \
         ({} hardware threads)",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );

    for combine in [false, true] {
        let tag = if combine { "combine" } else { "nocombine" };

        c.bench_function(&format!("route_serial_{tag}"), |b| {
            b.iter_batched(
                || outboxes.clone(),
                |obs| {
                    black_box(
                        route(obs, &g, &part, &locals, None, combine, MSG_BYTES)
                            .1
                            .sent_wire,
                    )
                },
                BatchSize::LargeInput,
            )
        });

        let pool = WorkerPool::new(WORKERS);
        let mut grid: RouteGrid<Hop> = RouteGrid::new(WORKERS);
        let mut inboxes: Vec<Inbox<Hop>> = (0..WORKERS).map(|_| Inbox::new()).collect();
        c.bench_function(&format!("route_grid_pooled_{tag}"), |b| {
            b.iter_batched(
                || outboxes.clone(),
                |mut obs| {
                    inboxes.iter_mut().for_each(|i| i.clear());
                    let stats = grid.route_round(
                        Some(&pool),
                        &mut obs,
                        &mut inboxes,
                        &g,
                        &part,
                        &locals,
                        None,
                        combine,
                        MSG_BYTES,
                    );
                    black_box(stats.sent_wire)
                },
                BatchSize::LargeInput,
            )
        });
    }
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
