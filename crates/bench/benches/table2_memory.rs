//! Table 2 — (workload, #batches) → memory / time / network-overuse
//! per machine, on 4- and 8-machine Galaxy clusters.
//!
//! Reproduced claims: more batches or more machines reduce per-machine
//! memory; the heavy workload Overflows on 4 machines at small batch
//! counts and Overloads on 8; the optimum sits just under the usable
//! capacity.

use mtvc_bench::{emit, run_cell, PaperTask, ScaledDataset};
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Dataset;
use mtvc_metrics::{row, RunOutcome, Table};
use mtvc_systems::SystemKind;

fn main() {
    let sd = ScaledDataset::load(Dataset::Dblp);
    let mut t = Table::new(
        "Table 2: (workload, #batches) -> memory/time/network-overuse per machine",
        &[
            "Workload",
            "batches",
            "4m memory",
            "4m time",
            "4m net-over",
            "8m memory",
            "8m time",
            "8m net-over",
        ],
    );
    for &w in &[1024u64, 4096, 12288] {
        for &b in &[1usize, 2, 4] {
            let mut cells = Vec::new();
            for machines in [4usize, 8] {
                let cluster = sd.cluster(ClusterSpec::galaxy(machines));
                let r = run_cell(&sd, &cluster, SystemKind::PregelPlus, PaperTask::Bppr(w), b);
                let mem = match r.outcome {
                    RunOutcome::Overflow => "Overflow".to_string(),
                    _ => r.stats.peak_memory.to_string(),
                };
                let time = match r.outcome {
                    RunOutcome::Completed(t) => format!("{:.1}min", t.minutes()),
                    other => other.to_string(),
                };
                let over = if r.outcome.is_completed() {
                    format!("{:.1}min", r.stats.network_overuse.minutes())
                } else {
                    "-".to_string()
                };
                cells.push((mem, time, over));
            }
            t.row(row!(
                w,
                b,
                cells[0].0.clone(),
                cells[0].1.clone(),
                cells[0].2.clone(),
                cells[1].0.clone(),
                cells[1].1.clone(),
                cells[1].2.clone()
            ));
        }
    }
    emit("table2", &t);
}
