//! Figure 7 — performance AND monetary cost in the cloud (Docker-32).
//!
//! For each panel the per-batch-setting monetary cost sums the credit
//! costs of every experiment run at that setting; overloaded runs are
//! billed at the cutoff and rendered `>$x`. The optimum cost line picks
//! the best batch setting per workload individually (§4.6).

use mtvc_bench::{emit, fmt_outcome, mark_optimal, run_cell, PaperTask, ScaledDataset, BATCH_AXIS};
use mtvc_cluster::{ClusterSpec, MonetaryCost};
use mtvc_core::JobResult;
use mtvc_graph::Dataset;
use mtvc_metrics::{row, Table};
use mtvc_systems::SystemKind;

struct Panel {
    label: &'static str,
    /// results[line][batch_idx]
    lines: Vec<(String, Vec<JobResult>)>,
}

impl Panel {
    fn run(
        label: &'static str,
        settings: Vec<(String, ScaledDataset, SystemKind, PaperTask, usize)>,
    ) -> Panel {
        let lines = settings
            .into_iter()
            .map(|(name, sd, system, paper, machines)| {
                let cluster = sd.cluster_for(ClusterSpec::docker(machines), system);
                let results: Vec<JobResult> = BATCH_AXIS
                    .iter()
                    .map(|&b| run_cell(&sd, &cluster, system, paper, b))
                    .collect();
                (name, results)
            })
            .collect();
        Panel { label, lines }
    }

    fn emit(&self, t: &mut Table) -> (Vec<MonetaryCost>, MonetaryCost) {
        for (name, results) in &self.lines {
            let times: Vec<f64> = results.iter().map(|r| r.plot_time().as_secs()).collect();
            for (i, &b) in BATCH_AXIS.iter().enumerate() {
                t.row(row!(
                    self.label,
                    name.clone(),
                    b,
                    fmt_outcome(&results[i]),
                    results[i].cost,
                    mark_optimal(&times, i)
                ));
            }
        }
        // Column sums (the x-axis $ annotations) and the per-line optimum.
        let per_batch: Vec<MonetaryCost> = (0..BATCH_AXIS.len())
            .map(|i| self.lines.iter().map(|(_, rs)| rs[i].cost).sum())
            .collect();
        let optimal: MonetaryCost = self
            .lines
            .iter()
            .map(|(_, rs)| {
                rs.iter()
                    .map(|r| r.cost)
                    .min_by(|a, b| a.credits.partial_cmp(&b.credits).unwrap())
                    .unwrap()
            })
            .sum();
        (per_batch, optimal)
    }
}

fn main() {
    let dblp = || ScaledDataset::load(Dataset::Dblp);
    let panels = vec![
        Panel::run(
            "a:task",
            vec![
                (
                    "BPPR(40960)".into(),
                    dblp(),
                    SystemKind::PregelPlus,
                    PaperTask::Bppr(40960),
                    32,
                ),
                (
                    "MSSP(4096)".into(),
                    dblp(),
                    SystemKind::PregelPlus,
                    PaperTask::Mssp(4096),
                    32,
                ),
                (
                    "BKHS(8192)".into(),
                    dblp(),
                    SystemKind::PregelPlus,
                    PaperTask::Bkhs(8192, 2),
                    32,
                ),
            ],
        ),
        Panel::run(
            "b:dataset",
            vec![
                (
                    "DBLP(40960)".into(),
                    dblp(),
                    SystemKind::PregelPlus,
                    PaperTask::Bppr(40960),
                    32,
                ),
                (
                    "Web-St(81920)".into(),
                    ScaledDataset::load(Dataset::WebSt),
                    SystemKind::PregelPlus,
                    PaperTask::Bppr(81920),
                    32,
                ),
                (
                    "Orkut(4096)".into(),
                    ScaledDataset::load(Dataset::Orkut),
                    SystemKind::PregelPlus,
                    PaperTask::Bppr(4096),
                    32,
                ),
                (
                    "Twitter(128)".into(),
                    ScaledDataset::load(Dataset::Twitter),
                    SystemKind::PregelPlus,
                    PaperTask::Bppr(128),
                    32,
                ),
            ],
        ),
        Panel::run(
            "c:machines",
            vec![
                (
                    "8m(10240)".into(),
                    dblp(),
                    SystemKind::PregelPlus,
                    PaperTask::Bppr(10240),
                    8,
                ),
                (
                    "16m(20480)".into(),
                    dblp(),
                    SystemKind::PregelPlus,
                    PaperTask::Bppr(20480),
                    16,
                ),
                (
                    "32m(40960)".into(),
                    dblp(),
                    SystemKind::PregelPlus,
                    PaperTask::Bppr(40960),
                    32,
                ),
            ],
        ),
        Panel::run(
            "d:system",
            vec![
                (
                    "Pregel+(40960)".into(),
                    dblp(),
                    SystemKind::PregelPlus,
                    PaperTask::Bppr(40960),
                    32,
                ),
                (
                    "Giraph(8192)".into(),
                    dblp(),
                    SystemKind::Giraph,
                    PaperTask::Bppr(8192),
                    32,
                ),
                (
                    "GraphD(4096)".into(),
                    dblp(),
                    SystemKind::GraphD,
                    PaperTask::Bppr(4096),
                    32,
                ),
                (
                    "Pregel+(mirror)(160)".into(),
                    dblp(),
                    SystemKind::PregelPlusMirror,
                    PaperTask::Bppr(160),
                    32,
                ),
            ],
        ),
    ];

    let mut t = Table::new(
        "Figure 7: performance and monetary cost in the cloud (Docker-32)",
        &[
            "panel", "setting", "batches", "time (s)", "credits", "optimal",
        ],
    );
    let mut cost_rows = Vec::new();
    for p in &panels {
        let (per_batch, optimal) = p.emit(&mut t);
        cost_rows.push((p.label, per_batch, optimal));
    }
    emit("fig07", &t);

    let mut c = Table::new(
        "Figure 7 monetary summary (per batch setting, as the x-axis $ labels)",
        &["panel", "$1", "$2", "$4", "$8", "$16", "optimal $"],
    );
    for (label, per_batch, optimal) in &cost_rows {
        c.row(row!(
            *label,
            per_batch[0],
            per_batch[1],
            per_batch[2],
            per_batch[3],
            per_batch[4],
            *optimal
        ));
        // An ill-set batch count must cost strictly more than the optimum.
        let max = per_batch.iter().map(|m| m.credits).fold(0.0f64, f64::max);
        assert!(
            max > optimal.credits * 1.2,
            "{label}: batching should matter for cloud cost"
        );
    }
    emit("fig07_money", &c);
}
