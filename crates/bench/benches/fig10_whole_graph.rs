//! Figure 10 — whole-graph access mode (§4.9): the graph is replicated
//! to each machine, the workload is partitioned, and a final
//! aggregation combines partial results. Same settings as Figure 5(c).
//!
//! Reproduced claims: the mode overloads more easily at small batch
//! counts (the full graph occupies each machine's memory), but with a
//! proper batch count it becomes competitive with the default mode.

use mtvc_bench::{emit, PaperTask, ScaledDataset, BATCH_AXIS, SEED};
use mtvc_cluster::ClusterSpec;
use mtvc_core::whole_graph::run_whole_graph;
use mtvc_graph::Dataset;
use mtvc_metrics::{row, RunOutcome, Table};
use mtvc_systems::SystemKind;

fn main() {
    let sd = ScaledDataset::load(Dataset::Dblp);
    let settings = [(8usize, 10240u64), (16, 20480), (27, 34560)];
    let mut t = Table::new(
        "Figure 10: whole-graph access mode (Pregel+ replicated per machine)",
        &[
            "#Machines",
            "Workload",
            "batches",
            "algorithm (s)",
            "aggregation (s)",
            "total",
        ],
    );
    for (machines, w) in settings {
        let cluster = sd.cluster(ClusterSpec::galaxy(machines));
        let task = sd.task(PaperTask::Bppr(w));
        let mut times = Vec::new();
        for &b in &BATCH_AXIS {
            let r = run_whole_graph(&sd.graph, task, SystemKind::PregelPlus, &cluster, b, SEED);
            times.push((b, r.outcome));
            t.row(row!(
                machines,
                w,
                b,
                format!("{:.1}", r.algorithm_time().as_secs()),
                format!("{:.1}", r.aggregation.as_secs()),
                match r.outcome {
                    RunOutcome::Completed(tt) => format!("{:.1}", tt.as_secs()),
                    other => other.to_string(),
                }
            ));
        }
        // "A satisfactory performance can be achieved with a proper
        // batch setting": at least one batched setting completes, and
        // it beats (or matches) the worst small-batch setting.
        let best = times
            .iter()
            .map(|(_, o)| o.plot_time().as_secs())
            .fold(f64::INFINITY, f64::min);
        let one_batch = times[0].1.plot_time().as_secs();
        assert!(
            best <= one_batch,
            "batched whole-graph mode should not lose to 1-batch"
        );
    }
    emit("fig10", &t);
}
