//! Table 4 — asynchronous GraphLab vs synchronous GraphLab on a classic
//! task (PageRank) and a multi-processing task (BPPR).
//!
//! Reproduced claims (§4.8): async beats sync for PageRank and the gap
//! grows with machines (barrier elimination); for heavy BPPR the
//! relation flips — sync combines messages and avoids distributed-lock
//! contention, so async sends more bytes and runs slower at high load.

use mtvc_bench::{emit, PaperTask, ScaledDataset, SEED};
use mtvc_cluster::ClusterSpec;
use mtvc_core::{run_job, BatchSchedule, JobSpec};
use mtvc_engine::{EngineConfig, Runner};
use mtvc_graph::Dataset;
use mtvc_metrics::{Bytes, SimTime, Table};
use mtvc_systems::SystemKind;
use mtvc_tasks::PageRankProgram;

fn run_pagerank(sd: &ScaledDataset, machines: usize, kind: SystemKind) -> (SimTime, Bytes) {
    let cluster = sd.cluster(ClusterSpec::galaxy(machines));
    let mut cfg = EngineConfig::new(cluster.clone(), kind.profile(&cluster.machine));
    cfg.seed = SEED;
    let runner = Runner::new(&sd.graph, kind.partitioner().as_ref(), cfg);
    let r = runner.run(&PageRankProgram::default());
    let bytes = Bytes(r.stats.total_network_bytes.get() / machines as u64);
    (r.outcome.plot_time(), bytes)
}

fn run_bppr(sd: &ScaledDataset, machines: usize, kind: SystemKind, w: u64) -> (SimTime, Bytes) {
    let cluster = sd.cluster(ClusterSpec::galaxy(machines));
    let task = sd.task(PaperTask::Bppr(w));
    let spec =
        JobSpec::new(task, kind, cluster, BatchSchedule::full_parallelism(w)).with_seed(SEED);
    let r = run_job(&sd.graph, &spec);
    let bytes = Bytes(r.stats.total_network_bytes.get() / machines as u64);
    (r.outcome.plot_time(), bytes)
}

fn main() {
    let sd = ScaledDataset::load(Dataset::Dblp);
    let machines_axis = [1usize, 2, 4, 8, 16];
    let workloads = [8u64, 32, 128, 512];

    let mut t = Table::new(
        "Table 4: GraphLab(sync) vs GraphLab(async) — seconds / net bytes per machine",
        &[
            "Machines",
            "PR sync",
            "PR async",
            "BPPR(8) s",
            "BPPR(8) a",
            "BPPR(32) s",
            "BPPR(32) a",
            "BPPR(128) s",
            "BPPR(128) a",
            "BPPR(512) s",
            "BPPR(512) a",
        ],
    );
    let fmt = |(t, b): (SimTime, Bytes)| format!("{:.1}s/{}", t.as_secs(), b);
    let mut pr_ratio = Vec::new();
    let mut bppr512 = Vec::new();
    for &m in &machines_axis {
        let pr_sync = run_pagerank(&sd, m, SystemKind::GraphLab);
        let pr_async = run_pagerank(&sd, m, SystemKind::GraphLabAsync);
        pr_ratio.push((m, pr_sync.0.as_secs() / pr_async.0.as_secs()));
        let mut cells = vec![m.to_string(), fmt(pr_sync), fmt(pr_async)];
        for &w in &workloads {
            let s = run_bppr(&sd, m, SystemKind::GraphLab, w);
            let a = run_bppr(&sd, m, SystemKind::GraphLabAsync, w);
            if w == 512 {
                bppr512.push((m, s, a));
            }
            cells.push(fmt(s));
            cells.push(fmt(a));
        }
        t.row(cells.into_iter().map(mtvc_metrics::Cell).collect());
    }
    emit("table4", &t);

    // Async wins PageRank at scale.
    let (m, ratio) = *pr_ratio.last().unwrap();
    println!("PageRank sync/async ratio at {m} machines = {ratio:.2}");
    assert!(
        ratio > 1.2,
        "async should clearly win PageRank at {m} machines"
    );

    // Sync wins heavy BPPR at scale, and async moves more bytes.
    let (m, s, a) = *bppr512.last().unwrap();
    println!(
        "BPPR(512) at {m} machines: sync {:.1}s/{} vs async {:.1}s/{}",
        s.0.as_secs(),
        s.1,
        a.0.as_secs(),
        a.1
    );
    assert!(
        a.0.as_secs() > s.0.as_secs() * 1.2,
        "async should clearly lose heavy BPPR at {m} machines"
    );
    assert!(a.1 > s.1, "async should move more bytes per machine");
}
