//! Table 3 — #batches vs disk utilization vs network for GraphD
//! (27 machines, workload 2048).
//!
//! Reproduced claims: 1–2 batches pin the disk at 100% utilization with
//! an exploding I/O queue; utilization drops to a low plateau from
//! 4 batches on; the optimum sits at the knee; further batching loses
//! to round-synchronization overhead.

use mtvc_bench::{emit, fmt_outcome, mark_optimal, run_cell, PaperTask, ScaledDataset};
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Dataset;
use mtvc_metrics::{row, Table};
use mtvc_systems::SystemKind;

fn main() {
    let sd = ScaledDataset::load(Dataset::Dblp);
    let cluster = sd.cluster(ClusterSpec::galaxy27());
    let batch_axis: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128];
    let results: Vec<_> = batch_axis
        .iter()
        .map(|&b| run_cell(&sd, &cluster, SystemKind::GraphD, PaperTask::Bppr(2048), b))
        .collect();
    let times: Vec<f64> = results.iter().map(|r| r.plot_time().as_secs()).collect();
    let mut t = Table::new(
        "Table 3: #batches vs disk utilization vs network (GraphD, 27 machines, W=2048)",
        &[
            "#Batches",
            "overuse net",
            "overuse I/O",
            "max disk util",
            "I/O queue len",
            "total time",
            "optimal",
        ],
    );
    for (i, &b) in batch_axis.iter().enumerate() {
        let r = &results[i];
        t.row(row!(
            b,
            format!("{:.0}s", r.stats.network_overuse.as_secs()),
            format!("{:.0}s", r.stats.disk_overuse.as_secs()),
            format!("{:.0}%", r.stats.max_disk_utilization * 100.0),
            format!("{:.0}", r.stats.max_io_queue_len),
            fmt_outcome(r),
            mark_optimal(&times, i)
        ));
    }
    emit("table3", &t);
    // The knee: saturated at 1-2 batches, plateau after.
    assert!(results[0].stats.max_disk_utilization > 0.95);
    assert!(results[1].stats.max_disk_utilization > 0.95);
    assert!(results[3].stats.max_disk_utilization < 0.6);
    assert!(results[0].stats.max_io_queue_len > 50.0 * results[3].stats.max_io_queue_len);
    // Optimum strictly inside the axis.
    let best = times
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert!(
        best > 0 && best < batch_axis.len() - 1,
        "optimum at the boundary"
    );
}
