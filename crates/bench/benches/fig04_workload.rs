//! Figure 4 — optimal batching is workload-dependent (BPPR on DBLP,
//! Galaxy-8, Pregel+).
//!
//! Workloads 1024 / 10240 / 12288: the optimum moves from 1-batch to
//! 2-batch to 4-batch as the workload grows, with Full-Parallelism
//! overloading at 12288 — the paper's headline "a higher amount of
//! workload tends to require more batches".

use mtvc_bench::{emit, fmt_outcome, mark_optimal, run_cell, PaperTask, ScaledDataset, BATCH_AXIS};
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Dataset;
use mtvc_metrics::{row, Table};
use mtvc_systems::SystemKind;

fn main() {
    let sd = ScaledDataset::load(Dataset::Dblp);
    let cluster = sd.cluster(ClusterSpec::galaxy8());
    let mut t = Table::new(
        "Figure 4: optimal batching is workload-dependent (DBLP, Galaxy-8, Pregel+)",
        &["Workload", "batches", "time (s)", "optimal"],
    );
    let mut optima = Vec::new();
    for &w in &[1024u64, 10240, 12288] {
        let results: Vec<_> = BATCH_AXIS
            .iter()
            .map(|&b| run_cell(&sd, &cluster, SystemKind::PregelPlus, PaperTask::Bppr(w), b))
            .collect();
        let times: Vec<f64> = results.iter().map(|r| r.plot_time().as_secs()).collect();
        let best = BATCH_AXIS[times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0];
        optima.push((w, best));
        for (i, &b) in BATCH_AXIS.iter().enumerate() {
            t.row(row!(
                w,
                b,
                fmt_outcome(&results[i]),
                mark_optimal(&times, i)
            ));
        }
    }
    emit("fig04", &t);
    println!("optimal batches per workload: {optima:?}");
    // The paper's reading: larger workloads favour more batches.
    assert!(
        optima.windows(2).all(|w| w[0].1 <= w[1].1),
        "optimum should not decrease with workload: {optima:?}"
    );
    assert_eq!(
        optima[0].1, 1,
        "light workload should favour Full-Parallelism"
    );
    assert!(
        optima[2].1 >= 4,
        "heavy workload should favour >= 4 batches"
    );
}
