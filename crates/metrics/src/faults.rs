//! Fault-injection and recovery accounting.
//!
//! [`FaultStats`] travels inside [`RunStats`](crate::RunStats) so every
//! layer — engine, batch runner, serve — sees the same record of what
//! was injected and what recovery cost. Replayed work is kept strictly
//! separate from first-run work: a chaos run's *non-replay* statistics
//! must be bit-identical to the fault-free run, and these counters hold
//! everything that differs.

use crate::units::{Bytes, SimTime};
use serde::{Deserialize, Serialize};

/// What went wrong during a run, and what it cost to recover.
///
/// Units: every `*_bytes` field counts raw bytes ([`Bytes`]); every
/// `*_time` field is simulated seconds ([`SimTime`]); the remaining
/// fields are plain event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Recoverable faults injected (crashes, delivery failures,
    /// stragglers, partitions, and corruption events).
    pub injected: u64,
    /// Machine crashes among `injected`.
    pub crashes: u64,
    /// Transient message-delivery failures among `injected`.
    pub delivery_failures: u64,
    /// Straggler windows among `injected` (a machine's rounds slowed
    /// by a seeded factor; no state loss, time-only cost).
    pub stragglers: u64,
    /// Network partitions among `injected` (all cross-machine
    /// deliveries of a window of rounds lost; rollback + replay).
    pub partitions: u64,
    /// Hard OOM kills (memory demand exceeded physical capacity while
    /// the hard-OOM fault was armed). These abort the run.
    pub oom_kills: u64,
    /// Checkpoints taken (snapshots of vertex state + in-flight
    /// messages at superstep boundaries). Includes both full snapshots
    /// and incremental deltas; `delta_checkpoints` counts the latter.
    pub checkpoints: u64,
    /// Checkpoints among `checkpoints` stored as incremental deltas
    /// (only cells touched since the previous checkpoint).
    pub delta_checkpoints: u64,
    /// Bytes stored by full checkpoint snapshots.
    pub checkpoint_full_bytes: Bytes,
    /// Bytes stored by incremental delta checkpoints (cell diffs +
    /// frontier-word diffs only).
    pub checkpoint_delta_bytes: Bytes,
    /// Supersteps re-executed during rollback-replay recovery.
    pub replayed_rounds: u64,
    /// Wire messages retransmitted during replay (never counted in the
    /// run's first-run traffic totals).
    pub replayed_wire: u64,
    /// Encoded message buckets that arrived corrupted and were caught
    /// by the wire-frame checksum at decode.
    pub corrupted_buckets: u64,
    /// Corrupted buckets repaired by per-bucket retransmission from the
    /// sender's retained shard buffers (no rollback).
    pub retransmitted_buckets: u64,
    /// Bytes re-sent by per-bucket retransmissions (raw bytes; never
    /// counted in first-run traffic totals).
    pub retransmitted_bytes: Bytes,
    /// Simulated time spent replaying, waiting out partitions, and
    /// retransmitting (excluded from the run's completion time, which
    /// reflects first-run work only). Simulated seconds.
    pub recovery_time: SimTime,
    /// Extra simulated time straggler windows added on top of the
    /// fault-free compute charge (accounted here, not in completion
    /// time). Simulated seconds.
    pub straggler_time: SimTime,
    /// Batch-level retries performed above the engine (serve layer).
    pub retries: u64,
}

impl FaultStats {
    /// Whether any fault machinery left a trace in this run.
    pub fn is_quiet(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Merge another run's fault record into this one.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.crashes += other.crashes;
        self.delivery_failures += other.delivery_failures;
        self.stragglers += other.stragglers;
        self.partitions += other.partitions;
        self.oom_kills += other.oom_kills;
        self.checkpoints += other.checkpoints;
        self.delta_checkpoints += other.delta_checkpoints;
        self.checkpoint_full_bytes += other.checkpoint_full_bytes;
        self.checkpoint_delta_bytes += other.checkpoint_delta_bytes;
        self.replayed_rounds += other.replayed_rounds;
        self.replayed_wire += other.replayed_wire;
        self.corrupted_buckets += other.corrupted_buckets;
        self.retransmitted_buckets += other.retransmitted_buckets;
        self.retransmitted_bytes += other.retransmitted_bytes;
        self.recovery_time += other.recovery_time;
        self.straggler_time += other.straggler_time;
        self.retries += other.retries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet() {
        assert!(FaultStats::default().is_quiet());
    }

    #[test]
    fn absorb_sums_everything() {
        let mut a = FaultStats {
            injected: 2,
            crashes: 1,
            delivery_failures: 1,
            stragglers: 1,
            partitions: 0,
            oom_kills: 0,
            checkpoints: 3,
            delta_checkpoints: 2,
            checkpoint_full_bytes: Bytes(1000),
            checkpoint_delta_bytes: Bytes(80),
            replayed_rounds: 4,
            replayed_wire: 100,
            corrupted_buckets: 2,
            retransmitted_buckets: 2,
            retransmitted_bytes: Bytes(300),
            recovery_time: SimTime::secs(1.5),
            straggler_time: SimTime::secs(0.25),
            retries: 1,
        };
        let b = FaultStats {
            injected: 1,
            crashes: 1,
            delivery_failures: 0,
            stragglers: 2,
            partitions: 1,
            oom_kills: 1,
            checkpoints: 2,
            delta_checkpoints: 1,
            checkpoint_full_bytes: Bytes(500),
            checkpoint_delta_bytes: Bytes(20),
            replayed_rounds: 2,
            replayed_wire: 50,
            corrupted_buckets: 1,
            retransmitted_buckets: 1,
            retransmitted_bytes: Bytes(100),
            recovery_time: SimTime::secs(0.5),
            straggler_time: SimTime::secs(0.75),
            retries: 0,
        };
        a.absorb(&b);
        assert_eq!(a.injected, 3);
        assert_eq!(a.crashes, 2);
        assert_eq!(a.delivery_failures, 1);
        assert_eq!(a.stragglers, 3);
        assert_eq!(a.partitions, 1);
        assert_eq!(a.oom_kills, 1);
        assert_eq!(a.checkpoints, 5);
        assert_eq!(a.delta_checkpoints, 3);
        assert_eq!(a.checkpoint_full_bytes, Bytes(1500));
        assert_eq!(a.checkpoint_delta_bytes, Bytes(100));
        assert_eq!(a.replayed_rounds, 6);
        assert_eq!(a.replayed_wire, 150);
        assert_eq!(a.corrupted_buckets, 3);
        assert_eq!(a.retransmitted_buckets, 3);
        assert_eq!(a.retransmitted_bytes, Bytes(400));
        assert_eq!(a.recovery_time.as_secs(), 2.0);
        assert_eq!(a.straggler_time.as_secs(), 1.0);
        assert_eq!(a.retries, 1);
        assert!(!a.is_quiet());
    }
}
