//! Fault-injection and recovery accounting.
//!
//! [`FaultStats`] travels inside [`RunStats`](crate::RunStats) so every
//! layer — engine, batch runner, serve — sees the same record of what
//! was injected and what recovery cost. Replayed work is kept strictly
//! separate from first-run work: a chaos run's *non-replay* statistics
//! must be bit-identical to the fault-free run, and these counters hold
//! everything that differs.

use crate::units::SimTime;
use serde::{Deserialize, Serialize};

/// What went wrong during a run, and what it cost to recover.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Recoverable faults injected (crashes + delivery failures).
    pub injected: u64,
    /// Machine crashes among `injected`.
    pub crashes: u64,
    /// Transient message-delivery failures among `injected`.
    pub delivery_failures: u64,
    /// Hard OOM kills (memory demand exceeded physical capacity while
    /// the hard-OOM fault was armed). These abort the run.
    pub oom_kills: u64,
    /// Checkpoints taken (snapshots of vertex state + in-flight
    /// messages at superstep boundaries).
    pub checkpoints: u64,
    /// Supersteps re-executed during rollback-replay recovery.
    pub replayed_rounds: u64,
    /// Wire messages retransmitted during replay (never counted in the
    /// run's first-run traffic totals).
    pub replayed_wire: u64,
    /// Simulated time spent replaying (excluded from the run's
    /// completion time, which reflects first-run work only).
    pub recovery_time: SimTime,
    /// Batch-level retries performed above the engine (serve layer).
    pub retries: u64,
}

impl FaultStats {
    /// Whether any fault machinery left a trace in this run.
    pub fn is_quiet(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Merge another run's fault record into this one.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.crashes += other.crashes;
        self.delivery_failures += other.delivery_failures;
        self.oom_kills += other.oom_kills;
        self.checkpoints += other.checkpoints;
        self.replayed_rounds += other.replayed_rounds;
        self.replayed_wire += other.replayed_wire;
        self.recovery_time += other.recovery_time;
        self.retries += other.retries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet() {
        assert!(FaultStats::default().is_quiet());
    }

    #[test]
    fn absorb_sums_everything() {
        let mut a = FaultStats {
            injected: 2,
            crashes: 1,
            delivery_failures: 1,
            oom_kills: 0,
            checkpoints: 3,
            replayed_rounds: 4,
            replayed_wire: 100,
            recovery_time: SimTime::secs(1.5),
            retries: 1,
        };
        let b = FaultStats {
            injected: 1,
            crashes: 1,
            delivery_failures: 0,
            oom_kills: 1,
            checkpoints: 2,
            replayed_rounds: 2,
            replayed_wire: 50,
            recovery_time: SimTime::secs(0.5),
            retries: 0,
        };
        a.absorb(&b);
        assert_eq!(a.injected, 3);
        assert_eq!(a.crashes, 2);
        assert_eq!(a.delivery_failures, 1);
        assert_eq!(a.oom_kills, 1);
        assert_eq!(a.checkpoints, 5);
        assert_eq!(a.replayed_rounds, 6);
        assert_eq!(a.replayed_wire, 150);
        assert_eq!(a.recovery_time.as_secs(), 2.0);
        assert_eq!(a.retries, 1);
        assert!(!a.is_quiet());
    }
}
