//! Measurement primitives shared by every crate in the `mtvc` workspace.
//!
//! The paper reports four kinds of quantities: **simulated running time**
//! (seconds, with a 6000 s overload cutoff), **memory** (bytes per
//! machine), **message congestion** (messages / bytes per round), and
//! **derived costs** (monetary credits, disk utilization, overuse
//! durations). This crate defines strongly-typed units for those
//! quantities, per-round statistic records, time series with summary
//! statistics, and plain-text table/CSV emitters used by the benchmark
//! harness to print paper-style rows.

pub mod counters;
pub mod faults;
pub mod gauge;
pub mod histogram;
pub mod outcome;
pub mod report;
pub mod series;
pub mod units;

pub use counters::{RoundStats, RunStats};
pub use faults::FaultStats;
pub use gauge::Gauge;
pub use histogram::Histogram;
pub use outcome::RunOutcome;
pub use report::{Cell, Table};
pub use series::{Series, Summary, TimedSeries};
pub use units::{Bytes, SimTime, OVERLOAD_CUTOFF};
