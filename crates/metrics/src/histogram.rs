//! Log-bucketed latency histograms for the serving layer.
//!
//! The offline pipeline reports single numbers per run; an online
//! service needs distributions — p50/p95/p99 queue wait, service time,
//! and end-to-end latency. [`Histogram`] is an HDR-style base-2
//! histogram with 16 sub-buckets per octave: ~6% relative error per
//! bucket, fixed 1 KiB footprint, O(1) record, mergeable across
//! threads.

use serde::{Deserialize, Serialize};

const SUBBUCKET_BITS: u32 = 4;
const SUBBUCKETS: u64 = 1 << SUBBUCKET_BITS; // 16 per octave
const OCTAVES: u32 = 64 - SUBBUCKET_BITS; // value range: full u64
const NUM_BUCKETS: usize = (SUBBUCKETS as usize) * (OCTAVES as usize + 1);

/// A fixed-size log-bucketed histogram over `u64` samples
/// (conventionally microseconds for latencies, but unit-agnostic).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUBBUCKET_BITS
    let shift = octave - SUBBUCKET_BITS;
    let sub = ((v >> shift) - SUBBUCKETS) as usize; // 0..16
    ((octave - SUBBUCKET_BITS + 1) as usize) * SUBBUCKETS as usize + sub
}

/// Representative (upper-bound) value of a bucket.
fn bucket_value(i: usize) -> u64 {
    let i = i as u64;
    if i < SUBBUCKETS {
        return i;
    }
    let octave = (i / SUBBUCKETS - 1) as u32 + SUBBUCKET_BITS;
    let sub = i % SUBBUCKETS;
    let base = 1u64 << octave;
    let step = 1u64 << (octave - SUBBUCKET_BITS);
    base + (sub + 1) * step - 1
}

impl Histogram {
    /// Worst-case relative overestimate of [`Histogram::quantile`] due
    /// to bucketing: a sample in octave `[2^k, 2^(k+1))` lands in a
    /// sub-bucket of width `2^(k-4)`, and the reported value is the
    /// sub-bucket's upper bound, so the overestimate is strictly less
    /// than one sub-bucket width — `2^(k-4) / 2^k = 1/16` of the value.
    /// Values below 16 are exact. (Quantiles additionally inherit rank
    /// granularity: with `n` samples the returned order statistic is
    /// exact to within one sample's rank, so `p999` needs `n ≳ 1000`
    /// before the bucket bound is the dominant error.)
    pub const MAX_QUANTILE_RELATIVE_ERROR: f64 = 1.0 / 16.0;

    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` — the smallest bucket upper
    /// bound covering `⌈q·count⌉` samples (0 when empty). Exact `min` /
    /// `max` are reported at the extremes.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Shorthand for the three quantiles the demo tables print.
    pub fn p50_p95_p99(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }

    /// The tail triple the serving benchmarks report.
    pub fn p50_p99_p999(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }

    /// Fold `other` into `self` (for per-thread histogram sharding).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.count(), 16);
    }

    #[test]
    fn quantiles_are_order_statistics_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            let rel = (got - expect).abs() / expect;
            assert!(
                rel < 0.07,
                "q={q}: got {got}, want ~{expect} (rel {rel:.3})"
            );
        }
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn quantile_monotone_in_q() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> 20);
        }
        let mut last = 0;
        for i in 0..=20 {
            let v = h.quantile(i as f64 / 20.0);
            assert!(v >= last, "quantiles not monotone");
            last = v;
        }
    }

    #[test]
    fn merge_equals_recording_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 3);
            } else {
                b.record(v * 3);
            }
            c.record(v * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.quantile(0.5), c.quantile(0.5));
        assert_eq!(a.quantile(0.99), c.quantile(0.99));
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
    }
}
