//! Numeric series with the summary statistics the harness reports.

use serde::{Deserialize, Serialize};

/// A labelled sequence of `f64` samples (e.g. running time per batch
/// count, messages per round).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    pub label: String,
    pub values: Vec<f64>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            values: Vec::new(),
        }
    }

    pub fn with_values(label: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            label: label.into(),
            values,
        }
    }

    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn summary(&self) -> Summary {
        Summary::of(&self.values)
    }

    /// Index of the minimum value (the "optimal batch" position in the
    /// paper's figures). Ties resolve to the first occurrence. `None`
    /// for an empty series.
    pub fn argmin(&self) -> Option<usize> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_nan())
            .fold(None, |best, (i, &v)| match best {
                Some((_, bv)) if bv <= v => best,
                _ => Some((i, v)),
            })
            .map(|(i, _)| i)
    }

    /// True when the series never increases then decreases — i.e. the
    /// values are monotone non-decreasing. Used by the "summary of the
    /// figures" panels in Figures 3 and 5.
    pub fn is_monotone_non_decreasing(&self) -> bool {
        self.values.windows(2).all(|w| w[0] <= w[1])
    }
}

/// A time-stamped numeric series: `(seconds-since-start, value)`
/// samples in arrival order. The serving layer uses it for
/// queue-depth-over-time traces, where plain [`Series`] would lose the
/// (irregular) sampling instants.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimedSeries {
    pub label: String,
    /// `(t, value)` pairs; `t` is seconds from the series' epoch.
    pub points: Vec<(f64, f64)>,
}

impl TimedSeries {
    pub fn new(label: impl Into<String>) -> Self {
        TimedSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample taken `t` seconds after the epoch.
    pub fn push(&mut self, t: f64, v: f64) {
        self.points.push((t, v));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Summary over the values (timestamps ignored).
    pub fn summary(&self) -> Summary {
        let values: Vec<f64> = self.points.iter().map(|&(_, v)| v).collect();
        Summary::of(&values)
    }

    /// Time-weighted mean value: each sample holds until the next
    /// timestamp (zero-order hold); the last sample is excluded since
    /// its holding time is unknown. Falls back to the plain mean with
    /// fewer than two samples.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.summary().mean;
        }
        let mut area = 0.0;
        let mut span = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0 - w[0].0).max(0.0);
            area += w[0].1 * dt;
            span += dt;
        }
        if span > 0.0 {
            area / span
        } else {
            self.summary().mean
        }
    }
}

/// Five-number-ish summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub std_dev: f64,
}

impl Summary {
    pub fn of(values: &[f64]) -> Summary {
        let count = values.len();
        if count == 0 {
            return Summary {
                count: 0,
                min: f64::NAN,
                max: f64::NAN,
                mean: f64::NAN,
                std_dev: f64::NAN,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = sum / count as f64;
        let var = values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Summary {
            count,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[2.0, 4.0, 6.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.mean, 4.0);
        assert!((s.std_dev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_nan() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert!(s.mean.is_nan());
    }

    #[test]
    fn argmin_finds_optimum_and_breaks_ties_first() {
        let s = Series::with_values("t", vec![5.0, 2.0, 2.0, 9.0]);
        assert_eq!(s.argmin(), Some(1));
        assert_eq!(Series::new("e").argmin(), None);
    }

    #[test]
    fn argmin_skips_nan() {
        let s = Series::with_values("t", vec![f64::NAN, 3.0, 1.0]);
        assert_eq!(s.argmin(), Some(2));
    }

    #[test]
    fn timed_series_summary_and_weighted_mean() {
        let mut ts = TimedSeries::new("depth");
        ts.push(0.0, 10.0);
        ts.push(1.0, 20.0);
        ts.push(3.0, 0.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.summary().max, 20.0);
        // 10 held for 1 s, 20 held for 2 s → (10 + 40) / 3.
        assert!((ts.time_weighted_mean() - 50.0 / 3.0).abs() < 1e-12);
        let single = TimedSeries {
            label: "one".into(),
            points: vec![(5.0, 7.0)],
        };
        assert_eq!(single.time_weighted_mean(), 7.0);
    }

    #[test]
    fn monotonicity_detection() {
        assert!(Series::with_values("m", vec![1.0, 1.0, 2.0]).is_monotone_non_decreasing());
        assert!(!Series::with_values("m", vec![3.0, 1.0, 2.0]).is_monotone_non_decreasing());
        assert!(Series::new("empty").is_monotone_non_decreasing());
    }
}
