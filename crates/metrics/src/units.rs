//! Strongly-typed measurement units.
//!
//! Two units dominate the workspace: [`Bytes`] for memory / traffic
//! accounting and [`SimTime`] for simulated wall-clock durations produced
//! by the cost model. Both are thin newtypes so they can be mixed up
//! neither with each other nor with raw counters.
//!
//! # Unit conventions across the workspace
//!
//! Quantities that cross crate boundaries follow fixed conventions:
//!
//! * **[`Bytes`]** — raw byte counts (memory, wire traffic, spill,
//!   checkpoint storage, retransmissions). Never kilo/mega-scaled at
//!   the source; only [`Bytes`]'s `Display` scales for humans.
//! * **[`SimTime`]** — *simulated* seconds from the cost model (`f64`).
//!   Engine durations, recovery/straggler overheads, and the overload
//!   cutoff all use it. Not wall-clock time.
//! * **Latency histograms** (serve layer) — `latency` and `queue_wait`
//!   record wall-clock **microseconds**; the recovery-latency histogram
//!   records simulated **milliseconds** (a `SimTime` × 1000, rounded),
//!   chosen so sub-second recoveries keep resolution in integer bins.
//!   Each histogram's field docs restate its unit.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// The paper marks a run as *overload* when it does not finish within
/// 6000 seconds (Section 4, "Workloads and Evaluation Metrics").
pub const OVERLOAD_CUTOFF: SimTime = SimTime(6000.0);

/// A byte quantity (memory footprint, message traffic, spill volume).
///
/// Stored as `u64`; arithmetic saturates on overflow so a pathological
/// cost-model input degrades gracefully instead of panicking.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Bytes(pub u64);

impl Bytes {
    pub const ZERO: Bytes = Bytes(0);

    pub const fn new(b: u64) -> Self {
        Bytes(b)
    }

    pub const fn kib(k: u64) -> Self {
        Bytes(k * 1024)
    }

    pub const fn mib(m: u64) -> Self {
        Bytes(m * 1024 * 1024)
    }

    pub const fn gib(g: u64) -> Self {
        Bytes(g * 1024 * 1024 * 1024)
    }

    pub const fn get(self) -> u64 {
        self.0
    }

    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Scale by a dimensionless factor, saturating at `u64::MAX`.
    pub fn scaled(self, factor: f64) -> Bytes {
        debug_assert!(factor >= 0.0, "negative byte scale {factor}");
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            Bytes(u64::MAX)
        } else {
            Bytes(v as u64)
        }
    }

    /// Saturating subtraction: how far `self` exceeds `other`.
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// Fraction of `capacity` that `self` represents (0.0 when capacity is 0).
    pub fn fraction_of(self, capacity: Bytes) -> f64 {
        if capacity.0 == 0 {
            0.0
        } else {
            self.0 as f64 / capacity.0 as f64
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0.saturating_mul(rhs))
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    /// Human form matching the paper's tables: `41M`, `1.7G`, `15.1GB`-style.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: f64 = 1024.0;
        let b = self.0 as f64;
        if b >= KIB * KIB * KIB {
            write!(f, "{:.1}GB", b / (KIB * KIB * KIB))
        } else if b >= KIB * KIB {
            write!(f, "{:.1}MB", b / (KIB * KIB))
        } else if b >= KIB {
            write!(f, "{:.1}KB", b / KIB)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A simulated duration in seconds.
///
/// Produced exclusively by the cluster cost model; never compare it with
/// host wall-clock time. `f64` seconds keeps the arithmetic simple while
/// being far more precise than the paper's reported resolution (0.1 s).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(pub f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    pub const fn secs(s: f64) -> Self {
        SimTime(s)
    }

    pub const fn as_secs(self) -> f64 {
        self.0
    }

    pub fn minutes(self) -> f64 {
        self.0 / 60.0
    }

    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors_compose() {
        assert_eq!(Bytes::kib(1), Bytes(1024));
        assert_eq!(Bytes::mib(1), Bytes(1024 * 1024));
        assert_eq!(Bytes::gib(2), Bytes(2 * 1024 * 1024 * 1024));
    }

    #[test]
    fn byte_arithmetic_saturates() {
        let max = Bytes(u64::MAX);
        assert_eq!(max + Bytes(1), max);
        assert_eq!(Bytes(3) - Bytes(5), Bytes::ZERO);
        assert_eq!(max * 2, max);
        assert_eq!(max.scaled(10.0), max);
    }

    #[test]
    fn byte_fraction_of_capacity() {
        assert_eq!(Bytes::gib(8).fraction_of(Bytes::gib(16)), 0.5);
        assert_eq!(Bytes::gib(8).fraction_of(Bytes::ZERO), 0.0);
    }

    #[test]
    fn byte_display_uses_human_units() {
        assert_eq!(Bytes(512).to_string(), "512B");
        assert_eq!(Bytes::kib(2).to_string(), "2.0KB");
        assert_eq!(Bytes::mib(3).to_string(), "3.0MB");
        assert_eq!(Bytes::gib(15).scaled(1.007).to_string(), "15.1GB");
    }

    #[test]
    fn simtime_ordering_and_math() {
        let a = SimTime::secs(2.0);
        let b = SimTime::secs(3.5);
        assert_eq!((a + b).as_secs(), 5.5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!((b * 2.0).as_secs(), 7.0);
        assert!((b / 2.0).as_secs() > 1.74 && (b / 2.0).as_secs() < 1.76);
    }

    #[test]
    fn simtime_sum_and_minutes() {
        let total: SimTime = [SimTime::secs(30.0), SimTime::secs(90.0)].into_iter().sum();
        assert_eq!(total.as_secs(), 120.0);
        assert_eq!(total.minutes(), 2.0);
    }

    #[test]
    fn overload_cutoff_matches_paper() {
        assert_eq!(OVERLOAD_CUTOFF.as_secs(), 6000.0);
    }
}
