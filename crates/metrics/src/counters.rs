//! Per-round and per-run statistic records.
//!
//! A [`RoundStats`] is what the engine measures for one synchronous
//! communication round (or one async scheduling epoch): message counts
//! before/after combining, traffic bytes, active vertices, memory
//! high-water marks, spill volume. A [`RunStats`] accumulates rounds into
//! the aggregate quantities the paper's tables report — total messages,
//! per-round congestion, network/disk overuse durations, and peak memory.

use crate::faults::FaultStats;
use crate::units::{Bytes, SimTime};
use serde::{Deserialize, Serialize};

/// Exact measurements taken during one engine round.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index within the current batch (0-based).
    pub round: usize,
    /// Messages produced by `compute` before any combiner ran.
    pub messages_sent: u64,
    /// Messages actually delivered after combining / mirroring dedup.
    pub messages_delivered: u64,
    /// Bytes of message traffic crossing machine boundaries.
    pub network_bytes: Bytes,
    /// Bytes of message traffic staying within a machine.
    pub local_bytes: Bytes,
    /// Post-codec bytes of the round's message buckets under the
    /// compact wire format (zero for profiles shipping full tuples).
    pub encoded_wire_bytes: Bytes,
    /// Broadcast copies served from receiver-side request-respond
    /// caches this round, and the payloads shipped to prime them.
    pub respond_cache_hits: u64,
    pub respond_cache_misses: u64,
    /// Bytes of surviving envelopes memcpy'd into shard buckets this
    /// round. The flat emit path pays this twice per envelope (outbox
    /// materialisation + bucket append); fold-at-send pre-sharded
    /// outboxes pay it once, so this counter is how the copy saving
    /// shows up in reports.
    pub shard_copy_bytes: Bytes,
    /// Vertices whose `compute` ran this round.
    pub active_vertices: u64,
    /// Peak memory used by the *busiest* machine during this round.
    pub peak_machine_memory: Bytes,
    /// Resident vertex-state bytes on the busiest machine this round.
    /// Exact for slab-backed programs (the slab's capacity); ledger-
    /// tracked otherwise.
    pub state_bytes: Bytes,
    /// Bytes streamed to disk by out-of-core execution this round.
    pub spilled_bytes: Bytes,
    /// Encoded bytes read back from the backing store by the partition
    /// pager this round (adjacency loads plus slab-state read-backs);
    /// zero on fully-resident runs.
    #[serde(default)]
    pub loaded_bytes: Bytes,
    /// Adjacency partitions loaded by the pager this round.
    #[serde(default)]
    pub partition_loads: u64,
    /// Partitions skipped outright by the frontier-density schedule
    /// (empty frontier — no bytes moved, no vertices visited).
    #[serde(default)]
    pub partitions_skipped: u64,
    /// Peak decoded adjacency bytes resident in the busiest worker's
    /// partition cache this round (the measured replacement for the
    /// resident-graph memory estimate).
    #[serde(default)]
    pub paged_resident_bytes: Bytes,
    /// Simulated duration of this round as charged by the cost model.
    pub duration: SimTime,
    /// Time this round spent with the network at its bandwidth cap.
    pub network_overuse: SimTime,
    /// Time this round spent with the disk at 100% utilization.
    pub disk_overuse: SimTime,
    /// Time the disk was busy (≤ duration); utilization = busy/duration.
    pub disk_busy: SimTime,
    /// Average number of messages waiting in the disk I/O queue.
    pub io_queue_len: f64,
}

impl RoundStats {
    /// Disk utilization for the round, in `[0, 1]` (Section 4.4's metric).
    pub fn disk_utilization(&self) -> f64 {
        if self.duration.as_secs() <= 0.0 {
            0.0
        } else {
            (self.disk_busy.as_secs() / self.duration.as_secs()).min(1.0)
        }
    }

    /// Combining ratio: delivered / sent (1.0 when no combiner ran).
    pub fn combine_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }
}

/// Aggregate statistics for a complete run (one batch, or a whole
/// multi-batch job when merged with [`RunStats::absorb`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    pub rounds: usize,
    pub total_messages_sent: u64,
    pub total_messages_delivered: u64,
    pub total_network_bytes: Bytes,
    /// Post-codec bucket bytes across the run (see
    /// [`RoundStats::encoded_wire_bytes`]).
    pub total_encoded_wire_bytes: Bytes,
    /// Request-respond cache totals across the run.
    pub respond_cache_hits: u64,
    pub respond_cache_misses: u64,
    /// Shard-bucket copy traffic across the run (see
    /// [`RoundStats::shard_copy_bytes`]).
    pub total_shard_copy_bytes: Bytes,
    pub total_spilled_bytes: Bytes,
    /// Measured pager traffic across the run (see
    /// [`RoundStats::loaded_bytes`] and friends).
    #[serde(default)]
    pub total_loaded_bytes: Bytes,
    #[serde(default)]
    pub total_partition_loads: u64,
    #[serde(default)]
    pub total_partitions_skipped: u64,
    /// High-water mark of decoded partition-cache bytes (see
    /// [`RoundStats::paged_resident_bytes`]).
    #[serde(default)]
    pub peak_paged_resident_bytes: Bytes,
    pub peak_memory: Bytes,
    /// High-water mark of per-machine resident vertex-state bytes
    /// across the run (see [`RoundStats::state_bytes`]).
    pub peak_state_bytes: Bytes,
    pub total_time: SimTime,
    pub network_overuse: SimTime,
    pub disk_overuse: SimTime,
    pub max_disk_utilization: f64,
    pub max_io_queue_len: f64,
    /// Fault-injection and recovery accounting (all-zero on clean runs;
    /// replayed work is recorded here and *only* here, so the rest of
    /// the record matches a fault-free run bit for bit).
    pub faults: FaultStats,
    /// Per-round history; kept so the harness can print figure series.
    pub per_round: Vec<RoundStats>,
}

impl RunStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one round's measurements into the aggregate.
    pub fn record_round(&mut self, round: RoundStats) {
        self.rounds += 1;
        self.total_messages_sent += round.messages_sent;
        self.total_messages_delivered += round.messages_delivered;
        self.total_network_bytes += round.network_bytes;
        self.total_encoded_wire_bytes += round.encoded_wire_bytes;
        self.respond_cache_hits += round.respond_cache_hits;
        self.respond_cache_misses += round.respond_cache_misses;
        self.total_shard_copy_bytes += round.shard_copy_bytes;
        self.total_spilled_bytes += round.spilled_bytes;
        self.total_loaded_bytes += round.loaded_bytes;
        self.total_partition_loads += round.partition_loads;
        self.total_partitions_skipped += round.partitions_skipped;
        self.peak_paged_resident_bytes = self
            .peak_paged_resident_bytes
            .max(round.paged_resident_bytes);
        self.peak_memory = self.peak_memory.max(round.peak_machine_memory);
        self.peak_state_bytes = self.peak_state_bytes.max(round.state_bytes);
        self.total_time += round.duration;
        self.network_overuse += round.network_overuse;
        self.disk_overuse += round.disk_overuse;
        self.max_disk_utilization = self.max_disk_utilization.max(round.disk_utilization());
        self.max_io_queue_len = self.max_io_queue_len.max(round.io_queue_len);
        self.per_round.push(round);
    }

    /// Merge the stats of a subsequent batch into this job-level record.
    pub fn absorb(&mut self, other: &RunStats) {
        self.rounds += other.rounds;
        self.total_messages_sent += other.total_messages_sent;
        self.total_messages_delivered += other.total_messages_delivered;
        self.total_network_bytes += other.total_network_bytes;
        self.total_encoded_wire_bytes += other.total_encoded_wire_bytes;
        self.respond_cache_hits += other.respond_cache_hits;
        self.respond_cache_misses += other.respond_cache_misses;
        self.total_shard_copy_bytes += other.total_shard_copy_bytes;
        self.total_spilled_bytes += other.total_spilled_bytes;
        self.total_loaded_bytes += other.total_loaded_bytes;
        self.total_partition_loads += other.total_partition_loads;
        self.total_partitions_skipped += other.total_partitions_skipped;
        self.peak_paged_resident_bytes = self
            .peak_paged_resident_bytes
            .max(other.peak_paged_resident_bytes);
        self.peak_memory = self.peak_memory.max(other.peak_memory);
        self.peak_state_bytes = self.peak_state_bytes.max(other.peak_state_bytes);
        self.total_time += other.total_time;
        self.network_overuse += other.network_overuse;
        self.disk_overuse += other.disk_overuse;
        self.max_disk_utilization = self.max_disk_utilization.max(other.max_disk_utilization);
        self.max_io_queue_len = self.max_io_queue_len.max(other.max_io_queue_len);
        self.faults.absorb(&other.faults);
        self.per_round.extend(other.per_round.iter().cloned());
    }

    /// Average number of messages *sent* per round — the paper's
    /// "message congestion" measure (Section 2.1).
    pub fn congestion(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_messages_sent as f64 / self.rounds as f64
        }
    }

    /// Additional simulated time charged on top of rounds (e.g. final
    /// aggregation in whole-graph mode). Kept explicit so callers cannot
    /// silently skew round accounting.
    pub fn charge_extra(&mut self, t: SimTime) {
        self.total_time += t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(msgs: u64, dur: f64, mem: u64) -> RoundStats {
        RoundStats {
            messages_sent: msgs,
            messages_delivered: msgs,
            duration: SimTime::secs(dur),
            peak_machine_memory: Bytes(mem),
            ..RoundStats::default()
        }
    }

    #[test]
    fn record_round_accumulates() {
        let mut s = RunStats::new();
        s.record_round(round(100, 1.0, 50));
        s.record_round(round(300, 2.0, 80));
        assert_eq!(s.rounds, 2);
        assert_eq!(s.total_messages_sent, 400);
        assert_eq!(s.peak_memory, Bytes(80));
        assert_eq!(s.total_time.as_secs(), 3.0);
        assert_eq!(s.congestion(), 200.0);
    }

    #[test]
    fn absorb_merges_batches() {
        let mut a = RunStats::new();
        a.record_round(round(10, 1.0, 5));
        let mut b = RunStats::new();
        b.record_round(round(20, 4.0, 9));
        b.record_round(round(30, 1.0, 2));
        a.absorb(&b);
        assert_eq!(a.rounds, 3);
        assert_eq!(a.total_messages_sent, 60);
        assert_eq!(a.peak_memory, Bytes(9));
        assert_eq!(a.total_time.as_secs(), 6.0);
        assert_eq!(a.per_round.len(), 3);
    }

    #[test]
    fn pager_counters_sum_and_peak() {
        let mut s = RunStats::new();
        s.record_round(RoundStats {
            loaded_bytes: Bytes(100),
            partition_loads: 4,
            partitions_skipped: 1,
            paged_resident_bytes: Bytes(700),
            ..RoundStats::default()
        });
        s.record_round(RoundStats {
            loaded_bytes: Bytes(50),
            partition_loads: 2,
            partitions_skipped: 5,
            paged_resident_bytes: Bytes(300),
            ..RoundStats::default()
        });
        assert_eq!(s.total_loaded_bytes, Bytes(150));
        assert_eq!(s.total_partition_loads, 6);
        assert_eq!(s.total_partitions_skipped, 6);
        assert_eq!(s.peak_paged_resident_bytes, Bytes(700));
        let mut merged = RunStats::new();
        merged.absorb(&s);
        merged.absorb(&s);
        assert_eq!(merged.total_loaded_bytes, Bytes(300));
        assert_eq!(merged.total_partitions_skipped, 12);
        assert_eq!(merged.peak_paged_resident_bytes, Bytes(700));
    }

    #[test]
    fn disk_utilization_bounded() {
        let r = RoundStats {
            duration: SimTime::secs(2.0),
            disk_busy: SimTime::secs(5.0),
            ..RoundStats::default()
        };
        assert_eq!(r.disk_utilization(), 1.0);
        let idle = RoundStats::default();
        assert_eq!(idle.disk_utilization(), 0.0);
    }

    #[test]
    fn combine_ratio_handles_zero() {
        let r = RoundStats::default();
        assert_eq!(r.combine_ratio(), 1.0);
        let r = RoundStats {
            messages_sent: 100,
            messages_delivered: 25,
            ..RoundStats::default()
        };
        assert_eq!(r.combine_ratio(), 0.25);
    }

    #[test]
    fn congestion_empty_run_is_zero() {
        assert_eq!(RunStats::new().congestion(), 0.0);
    }
}
