//! Run outcomes: completion vs the paper's *overload* state.
//!
//! Section 4 of the paper marks results as **overload** when a task does
//! not finish within 6000 seconds; Section 4.3 additionally distinguishes
//! **overflow** (memory exhaustion terminated the run). Monetary costs of
//! overloaded runs are lower bounds, printed with a `>` prefix (§4.6).

use crate::units::{SimTime, OVERLOAD_CUTOFF};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of running one multi-processing job (or one batch).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Finished within the cutoff with the given simulated running time.
    Completed(SimTime),
    /// Exceeded the 6000 s cutoff; carries the cutoff as lower bound.
    Overload,
    /// Hard memory exhaustion: the run could not proceed at all
    /// (Table 2's "Overflow").
    Overflow,
}

impl RunOutcome {
    /// Classify a raw simulated duration against the cutoff.
    pub fn from_time(t: SimTime) -> Self {
        if !t.is_finite() || t > OVERLOAD_CUTOFF {
            RunOutcome::Overload
        } else {
            RunOutcome::Completed(t)
        }
    }

    /// Time to *plot*: completed time, or the cutoff for overload /
    /// overflow (the paper plots overloaded bars at the cutoff height).
    pub fn plot_time(self) -> SimTime {
        match self {
            RunOutcome::Completed(t) => t,
            RunOutcome::Overload | RunOutcome::Overflow => OVERLOAD_CUTOFF,
        }
    }

    pub fn is_completed(self) -> bool {
        matches!(self, RunOutcome::Completed(_))
    }

    pub fn is_overload(self) -> bool {
        matches!(self, RunOutcome::Overload)
    }

    pub fn is_overflow(self) -> bool {
        matches!(self, RunOutcome::Overflow)
    }

    /// The completed duration, if any.
    pub fn time(self) -> Option<SimTime> {
        match self {
            RunOutcome::Completed(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed(t) => write!(f, "{t}"),
            RunOutcome::Overload => write!(f, "Overload"),
            RunOutcome::Overflow => write!(f, "Overflow"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_uses_cutoff() {
        assert!(RunOutcome::from_time(SimTime::secs(5999.9)).is_completed());
        assert!(RunOutcome::from_time(SimTime::secs(6000.0)).is_completed());
        assert!(RunOutcome::from_time(SimTime::secs(6000.1)).is_overload());
        assert!(RunOutcome::from_time(SimTime::secs(f64::INFINITY)).is_overload());
        assert!(RunOutcome::from_time(SimTime::secs(f64::NAN)).is_overload());
    }

    #[test]
    fn plot_time_clamps_to_cutoff() {
        assert_eq!(RunOutcome::Overload.plot_time(), OVERLOAD_CUTOFF);
        assert_eq!(RunOutcome::Overflow.plot_time(), OVERLOAD_CUTOFF);
        assert_eq!(
            RunOutcome::Completed(SimTime::secs(12.0)).plot_time(),
            SimTime::secs(12.0)
        );
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(RunOutcome::Overload.to_string(), "Overload");
        assert_eq!(RunOutcome::Overflow.to_string(), "Overflow");
        assert_eq!(
            RunOutcome::Completed(SimTime::secs(173.3)).to_string(),
            "173.3s"
        );
    }

    #[test]
    fn time_extraction() {
        assert_eq!(RunOutcome::Overload.time(), None);
        assert_eq!(
            RunOutcome::Completed(SimTime::secs(1.0)).time(),
            Some(SimTime::secs(1.0))
        );
    }
}
