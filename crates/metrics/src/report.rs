//! Plain-text table emitters used by the benchmark harness.
//!
//! Every figure/table regeneration bench prints an aligned text table to
//! stdout (the "same rows the paper reports") and can render the same
//! data as CSV for post-processing. No external dependency is needed;
//! these are deliberately small.

use std::fmt::Write as _;

/// One table cell. Everything is stringly-rendered at insertion time so
/// the table itself stays dead simple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell(pub String);

impl<T: ToString> From<T> for Cell {
    fn from(v: T) -> Self {
        Cell(v.to_string())
    }
}

/// An aligned text table with a title, header row, and data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Panics in debug builds if the arity mismatches the
    /// header — a mismatched row is always a harness bug.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        debug_assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {} in table {:?}",
            cells.len(),
            self.headers.len(),
            self.title
        );
        self.rows.push(cells);
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < w.len() {
                    w[i] = w[i].max(c.0.len());
                }
            }
        }
        w
    }

    /// Render as an aligned monospace table.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |cells: &[String], w: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:width$}", c, width = w[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &w));
        let sep: Vec<String> = w.iter().map(|n| "-".repeat(*n)).collect();
        let _ = writeln!(out, "{}", line(&sep, &w));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| c.0.clone()).collect();
            let _ = writeln!(out, "{}", line(&cells, &w));
        }
        out
    }

    /// Render as RFC-4180-ish CSV (quotes fields containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(&c.0)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('|', "\\|")
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "**{}**\n", self.title);
        }
        let _ = writeln!(
            out,
            "| {} |",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter()
                    .map(|c| esc(&c.0))
                    .collect::<Vec<_>>()
                    .join(" | ")
            );
        }
        out
    }

    /// Print the table to stdout with a trailing blank line.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Convenience macro for building a row out of heterogeneous values.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::report::Cell::from($v)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["batches", "time"]);
        t.row(row!(1, "6641.5s"));
        t.row(row!(16, "201.0s"));
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("batches  time"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        // column alignment: "16" should start at same offset as "1 "
        assert!(lines[3].starts_with("1 "));
        assert!(lines[4].starts_with("16"));
    }

    #[test]
    fn csv_escapes_properly() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(row!("x,y", "he said \"hi\""));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    #[cfg(debug_assertions)]
    fn row_arity_checked_in_debug() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(row!(1));
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("demo", &["a", "b|c"]);
        t.row(row!("x", 2));
        let md = t.to_markdown();
        assert!(md.contains("**demo**"));
        assert!(md.contains("| a | b\\|c |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| x | 2 |"));
    }

    #[test]
    fn cell_from_display_types() {
        assert_eq!(Cell::from(3.5).0, "3.5");
        assert_eq!(Cell::from("s").0, "s");
        assert_eq!(Cell::from(crate::units::Bytes::mib(1)).0, "1.0MB");
    }
}
