//! Shared gauges for live service state (queue depth, in-flight
//! batches, residual bytes). Lock-free, cloneable handles over atomics
//! with a high-water mark, so the serving layer's threads can publish
//! and observers can read without coordination.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonic-watermark gauge over a `u64` level.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

#[derive(Debug, Default)]
struct GaugeInner {
    level: AtomicU64,
    high_water: AtomicU64,
}

impl Gauge {
    /// New gauge at level 0.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.inner.level.load(Ordering::Acquire)
    }

    /// Highest level ever observed.
    pub fn high_water(&self) -> u64 {
        self.inner.high_water.load(Ordering::Acquire)
    }

    /// Set the level outright.
    pub fn set(&self, v: u64) {
        self.inner.level.store(v, Ordering::Release);
        self.inner.high_water.fetch_max(v, Ordering::AcqRel);
    }

    /// Raise the level by `d`, updating the high-water mark.
    pub fn add(&self, d: u64) {
        let now = self.inner.level.fetch_add(d, Ordering::AcqRel) + d;
        self.inner.high_water.fetch_max(now, Ordering::AcqRel);
    }

    /// Lower the level by `d` (saturating at 0).
    pub fn sub(&self, d: u64) {
        let mut cur = self.inner.level.load(Ordering::Acquire);
        loop {
            let next = cur.saturating_sub(d);
            match self.inner.level.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn add_sub_track_level_and_watermark() {
        let g = Gauge::new();
        g.add(5);
        g.add(3);
        assert_eq!(g.get(), 8);
        g.sub(6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates");
    }

    #[test]
    fn set_updates_watermark() {
        let g = Gauge::new();
        g.set(10);
        g.set(4);
        assert_eq!(g.get(), 4);
        assert_eq!(g.high_water(), 10);
    }

    #[test]
    fn clones_share_state_across_threads() {
        let g = Gauge::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = g.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        g.add(1);
                        g.sub(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 0);
        assert!(g.high_water() >= 1);
    }
}
