//! Property tests pinning [`Histogram`]'s tail-quantile accuracy to
//! its documented error bound, on distributions whose true quantiles
//! are known in closed form.
//!
//! [`Histogram::MAX_QUANTILE_RELATIVE_ERROR`] (1/16, from the 16
//! sub-buckets per octave) bounds the *bucketing* overestimate. The
//! quantile additionally inherits rank granularity of one sample, so
//! the asserted tolerance is the bucket bound plus the rank term
//! `1/(q·n)` scaled into value space — negligible at the sample counts
//! used here.

use mtvc_metrics::Histogram;
use proptest::prelude::*;

/// Assert every tail quantile of `samples` is within the documented
/// bucket error of the exact ⌈q·n⌉-rank order statistic (plus one
/// rank of slack to either side).
fn assert_tail_quantiles(samples: Vec<u64>) {
    let mut h = Histogram::new();
    for &v in &samples {
        h.record(v);
    }
    let mut sorted = samples;
    sorted.sort_unstable();
    let n = sorted.len();
    for q in [0.5, 0.9, 0.99, 0.999] {
        let got = h.quantile(q) as f64;
        // The histogram may land one rank to either side of the exact
        // order statistic when bucket boundaries split equal ranks;
        // bound the comparison by the neighbouring order statistics.
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let lo = sorted[rank.saturating_sub(2)] as f64;
        let hi = sorted[(rank).min(n - 1)] as f64;
        let tol = Histogram::MAX_QUANTILE_RELATIVE_ERROR;
        assert!(
            got >= lo * (1.0 - 1e-12),
            "q={q}: {got} underestimates order statistic {lo}"
        );
        assert!(
            got <= hi * (1.0 + tol) + 1.0,
            "q={q}: {got} exceeds {hi} by more than {tol:.4} relative \
             (n={n})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Uniform integers over a random range: p50/p90/p99/p999 all stay
    /// within the documented bucket error of the true order statistic.
    #[test]
    fn uniform_tail_quantiles_within_bound(
        seed in any::<u64>(),
        span in 1_000u64..1_000_000,
    ) {
        let mut x = seed | 1;
        let samples: Vec<u64> = (0..20_000)
            .map(|_| {
                // SplitMix64: deterministic, well-distributed.
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) % span
            })
            .collect();
        assert_tail_quantiles(samples);
    }

    /// Exponential-ish (geometric tail) samples — the shape latency
    /// distributions actually take: long tail across many octaves, so
    /// every octave's bucketing is exercised.
    #[test]
    fn heavy_tail_quantiles_within_bound(
        seed in any::<u64>(),
        scale in 10u64..10_000,
    ) {
        let mut x = seed | 1;
        let samples: Vec<u64> = (0..20_000)
            .map(|_| {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let u = ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64;
                // Inverse-CDF exponential, scaled and floored.
                (-(1.0 - u).max(1e-16).ln() * scale as f64) as u64
            })
            .collect();
        assert_tail_quantiles(samples);
    }

    /// Deterministic populations (every permutation of 1..=n records
    /// the same histogram): quantiles are permutation-invariant and
    /// p999 tracks the known value n·0.999 within the bound.
    #[test]
    fn known_population_p999(n in 2_000usize..50_000) {
        let mut h = Histogram::new();
        for v in 1..=n as u64 {
            h.record(v);
        }
        let want = (0.999 * n as f64).ceil();
        let got = h.quantile(0.999) as f64;
        let tol = Histogram::MAX_QUANTILE_RELATIVE_ERROR;
        prop_assert!(
            got >= want && got <= want * (1.0 + tol) + 1.0,
            "p999 of 1..={n}: got {got}, want [{want}, {}]",
            want * (1.0 + tol)
        );
    }
}
