//! Property-based tests for the multi-task layer.

use mtvc_core::task::select_sources;
use mtvc_core::{BatchSchedule, Task};
use mtvc_graph::generators;
use proptest::prelude::*;

proptest! {
    #[test]
    fn equal_schedules_cover_and_balance(total in 1u64..100_000, k in 1usize..64) {
        let s = BatchSchedule::equal(total, k);
        prop_assert_eq!(s.total(), total);
        prop_assert_eq!(s.len(), k.min(total as usize));
        let max = *s.batches().iter().max().unwrap();
        let min = *s.batches().iter().min().unwrap();
        prop_assert!(max - min <= 1, "batch sizes differ by more than one");
        prop_assert!(s.batches().iter().all(|&b| b >= 1));
    }

    #[test]
    fn two_batch_delta_is_consistent(total in 4u64..1_000_000, delta_frac in -0.9f64..0.9) {
        let delta = (total as f64 * delta_frac) as i64;
        let s = BatchSchedule::two_batch_delta(total, delta);
        prop_assert_eq!(s.total(), total);
        prop_assert_eq!(s.len(), 2);
        let diff = s.batches()[0] as i64 - s.batches()[1] as i64;
        // Integer division may shift by one unit.
        prop_assert!((diff - delta).abs() <= 1, "diff {diff} vs delta {delta}");
    }

    #[test]
    fn with_workload_round_trips(total in 1u64..1_000_000, next in 1u64..1_000_000) {
        for task in [Task::bppr(total), Task::mssp(total), Task::bkhs(total)] {
            let changed = task.with_workload(next);
            prop_assert_eq!(changed.workload(), next);
            prop_assert_eq!(changed.name(), task.name());
            prop_assert_eq!(changed.with_workload(total).workload(), total);
        }
    }

    #[test]
    fn source_selection_covers_schedule_slices(
        n in 4usize..200,
        total in 1u64..500,
        k in 1usize..16,
        seed in any::<u64>(),
    ) {
        // Slicing the source pool by an equal schedule must consume the
        // pool exactly, with no query shared between batches.
        let g = generators::ring(n, true);
        let pool = select_sources(&g, total, seed);
        prop_assert_eq!(pool.len() as u64, total);
        let schedule = BatchSchedule::equal(total, k);
        let mut offset = 0usize;
        for &w in schedule.batches() {
            let slice = &pool[offset..offset + w as usize];
            prop_assert_eq!(slice.len() as u64, w);
            offset += w as usize;
        }
        prop_assert_eq!(offset, pool.len());
        // Every source is a valid vertex.
        prop_assert!(pool.iter().all(|&v| (v as usize) < n));
    }

    #[test]
    fn source_prefix_stability(
        n in 4usize..100,
        small in 1u64..50,
        extra in 1u64..50,
        seed in any::<u64>(),
    ) {
        let g = generators::ring(n, true);
        let a = select_sources(&g, small, seed);
        let b = select_sources(&g, small + extra, seed);
        prop_assert_eq!(&b[..small as usize], &a[..]);
    }
}
