//! Whole-graph access mode (§4.9 "Alternative Graph Partitioning",
//! Figure 10).
//!
//! Each machine holds a replica of the entire graph; the *workload* is
//! split evenly across machines instead of the vertices. Inter-machine
//! communication disappears during the algorithm, but each machine pays
//! the full graph's memory footprint, and a final aggregation combines
//! the per-machine partial results (the upper bar segments of Fig 10).

use crate::executor::{run_job, JobResult, JobSpec};
use crate::schedule::BatchSchedule;
use crate::task::Task;
use mtvc_cluster::{ClusterSpec, MonetaryCost};
use mtvc_graph::Graph;
use mtvc_metrics::{RunOutcome, SimTime};
use mtvc_systems::SystemKind;

/// Result of a whole-graph-mode execution.
#[derive(Debug, Clone)]
pub struct WholeGraphResult {
    /// The per-machine algorithm phase (identical machines; simulated
    /// once).
    pub algorithm: JobResult,
    /// Final cross-machine aggregation of partial results.
    pub aggregation: SimTime,
    /// Combined outcome (algorithm + aggregation vs the cutoff).
    pub outcome: RunOutcome,
    pub cost: MonetaryCost,
}

impl WholeGraphResult {
    /// Algorithm-phase plot time (lower bar segment).
    pub fn algorithm_time(&self) -> SimTime {
        self.algorithm.plot_time()
    }

    /// Total plot time.
    pub fn total_time(&self) -> SimTime {
        self.outcome.plot_time()
    }
}

/// Execute `task` in whole-graph mode on `cluster` with `num_batches`
/// equal batches.
///
/// Every machine runs the same single-worker VC-system over the full
/// graph with `workload / machines` of the unit tasks; since machines
/// are statistically identical, one is simulated and its time taken as
/// the phase time. Aggregation ships every machine's partial results to
/// a master and merges them.
pub fn run_whole_graph(
    graph: &Graph,
    task: Task,
    system: SystemKind,
    cluster: &ClusterSpec,
    num_batches: usize,
    seed: u64,
) -> WholeGraphResult {
    let machines = cluster.machines.max(1);
    let per_machine_workload = (task.workload() / machines as u64).max(1);
    let local_task = task.with_workload(per_machine_workload);
    let single = ClusterSpec::new(
        format!("{}-replica", cluster.name),
        1,
        cluster.machine.clone(),
    );
    let spec = JobSpec::new(
        local_task,
        system,
        single,
        BatchSchedule::equal(per_machine_workload, num_batches),
    )
    .with_seed(seed);
    let algorithm = run_job(graph, &spec);

    // Aggregation: each machine's accumulated intermediate results are
    // gathered at a master and merged. Result volume = residual bytes
    // of the local run, shipped by (machines - 1) peers.
    let result_bytes = algorithm
        .per_batch
        .last()
        .map(|b| b.residual_after)
        .unwrap_or(0);
    let gather_bytes = result_bytes.saturating_mul(machines as u64 - 1);
    let bw = cluster.machine.network_bandwidth.max(1.0);
    let merge_ops = (gather_bytes / 16) as f64; // one merge op per record
    let agg_secs =
        gather_bytes as f64 / bw + merge_ops / cluster.machine.total_ops_per_sec().max(1.0);
    let aggregation = SimTime::secs(agg_secs);

    let outcome = match algorithm.outcome {
        RunOutcome::Completed(t) => RunOutcome::from_time(t + aggregation),
        failed => failed,
    };
    let cost = MonetaryCost::of_run(outcome, cluster);
    WholeGraphResult {
        algorithm,
        aggregation,
        outcome,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;

    #[test]
    fn whole_graph_mode_completes_with_aggregation() {
        let g = generators::power_law(150, 600, 2.4, 41);
        let r = run_whole_graph(
            &g,
            Task::bppr(32),
            SystemKind::PregelPlus,
            &ClusterSpec::galaxy(4),
            2,
            11,
        );
        assert!(r.outcome.is_completed(), "{:?}", r.outcome);
        assert!(r.aggregation > SimTime::ZERO);
        assert!(r.total_time() >= r.algorithm_time());
    }

    #[test]
    fn no_network_traffic_during_algorithm_phase() {
        let g = generators::power_law(150, 600, 2.4, 43);
        let r = run_whole_graph(
            &g,
            Task::bppr(16),
            SystemKind::PregelPlus,
            &ClusterSpec::galaxy(8),
            1,
            13,
        );
        // Single-worker replica: every message is machine-local.
        assert_eq!(r.algorithm.stats.total_network_bytes.get(), 0);
    }

    #[test]
    fn workload_split_across_machines() {
        let g = generators::power_law(120, 480, 2.4, 47);
        let r = run_whole_graph(
            &g,
            Task::bppr(64),
            SystemKind::PregelPlus,
            &ClusterSpec::galaxy(8),
            2,
            17,
        );
        let per_machine: u64 = r.algorithm.per_batch.iter().map(|b| b.workload).sum();
        assert_eq!(per_machine, 8); // 64 / 8 machines
    }
}
