//! Practical-Pregel-Algorithm (PPA) condition checking (§2.4).
//!
//! Yan et al. define a *balanced practical Pregel algorithm* (BPPA) by
//! per-vertex linear space/computation/communication plus a logarithmic
//! round bound, and PPA as its average-per-vertex relaxation. §2.4
//! argues multi-processing tasks generally cannot be PPAs: running the
//! walks sequentially blows the round bound (`O(log² n)`), running them
//! concurrently blows the communication bound (`Ω(log n · d(v))`).
//!
//! [`check_ppa`] evaluates the two *observable* PPA conditions —
//! average communication per vertex per round and total rounds —
//! against a finished run's statistics, so that claim becomes testable.
//! (The every-vertex BPPA variants need per-vertex instrumentation the
//! engine deliberately does not pay for; averages suffice for the
//! paper's argument.)

use mtvc_graph::Graph;
use mtvc_metrics::RunStats;
use serde::{Deserialize, Serialize};

/// Constants of the PPA bounds: rounds ≤ `round_constant · log₂ n`,
/// average messages per vertex per round ≤ `comm_constant · d_avg`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpaCriteria {
    pub round_constant: f64,
    pub comm_constant: f64,
}

impl Default for PpaCriteria {
    fn default() -> Self {
        PpaCriteria {
            round_constant: 4.0,
            comm_constant: 4.0,
        }
    }
}

/// Verdict of a PPA check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpaReport {
    /// Rounds the run took.
    pub rounds: usize,
    /// The `c · log₂ n` budget.
    pub round_budget: f64,
    pub rounds_ok: bool,
    /// Messages sent per vertex in the busiest round (the PPA bound
    /// must hold every round, so the peak is the binding constraint).
    pub avg_msgs_per_vertex_round: f64,
    /// The `c · d_avg` budget.
    pub comm_budget: f64,
    pub comm_ok: bool,
}

impl PpaReport {
    /// Does the execution satisfy both observable PPA conditions?
    pub fn is_ppa(&self) -> bool {
        self.rounds_ok && self.comm_ok
    }
}

/// Check a finished run against the PPA bounds.
pub fn check_ppa(graph: &Graph, stats: &RunStats, criteria: PpaCriteria) -> PpaReport {
    let n = graph.num_vertices().max(2) as f64;
    let round_budget = criteria.round_constant * n.log2();
    let comm_budget = criteria.comm_constant * graph.avg_degree().max(1.0);
    let peak_round_msgs = stats
        .per_round
        .iter()
        .map(|r| r.messages_sent)
        .max()
        .unwrap_or(0);
    let avg_msgs_per_vertex_round = peak_round_msgs as f64 / n;
    PpaReport {
        rounds: stats.rounds,
        round_budget,
        rounds_ok: (stats.rounds as f64) <= round_budget,
        avg_msgs_per_vertex_round,
        comm_budget,
        comm_ok: avg_msgs_per_vertex_round <= comm_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_job, BatchSchedule, JobSpec, Task};
    use mtvc_cluster::ClusterSpec;
    use mtvc_graph::generators;
    use mtvc_systems::SystemKind;

    #[test]
    fn heavy_concurrent_bppr_violates_ppa_communication() {
        // §2.4: running log n walks per vertex concurrently sends
        // Ω(log n · d(v)) messages in the first round — beyond the
        // O(d(v)) PPA budget.
        let g = generators::power_law(256, 1024, 2.4, 81);
        let w = (g.num_vertices() as f64).log2().ceil() as u64 * 16;
        let spec = JobSpec::new(
            Task::bppr(w),
            SystemKind::PregelPlus,
            ClusterSpec::galaxy(4),
            BatchSchedule::full_parallelism(w),
        );
        let r = run_job(&g, &spec);
        let report = check_ppa(&g, &r.stats, PpaCriteria::default());
        assert!(
            !report.comm_ok,
            "expected communication violation: {report:?}"
        );
        assert!(!report.is_ppa());
    }

    #[test]
    fn sequential_walks_violate_ppa_rounds() {
        // §2.4's other horn: one walk at a time (maximum batching)
        // keeps congestion linear but needs ~O(log² n) rounds.
        let g = generators::power_law(256, 1024, 2.4, 83);
        let w = (g.num_vertices() as f64).log2().ceil() as u64;
        let spec = JobSpec::new(
            Task::bppr(w),
            SystemKind::PregelPlus,
            ClusterSpec::galaxy(4),
            BatchSchedule::equal(w, w as usize), // one walk per batch
        );
        let r = run_job(&g, &spec);
        let report = check_ppa(&g, &r.stats, PpaCriteria::default());
        assert!(!report.rounds_ok, "expected round violation: {report:?}");
    }

    #[test]
    fn connected_components_satisfies_ppa() {
        // The §2.4 counterpoint: Connected Components admits a PPA —
        // HashMin on a small-diameter graph stays within both budgets.
        use mtvc_engine::{EngineConfig, Runner};
        use mtvc_graph::partition::HashPartitioner;
        let g = generators::power_law(512, 3000, 2.3, 91);
        let mut cfg = EngineConfig::new(
            ClusterSpec::galaxy(4),
            SystemKind::PregelPlus.profile(&ClusterSpec::galaxy(4).machine),
        );
        cfg.cutoff = mtvc_metrics::SimTime::secs(1e12);
        let runner = Runner::new(&g, &HashPartitioner::default(), cfg);
        let result = runner.run(&mtvc_tasks::ConnectedComponentsProgram);
        assert!(result.outcome.is_completed());
        let report = check_ppa(&g, &result.stats, PpaCriteria::default());
        assert!(report.is_ppa(), "CC should be a PPA: {report:?}");
    }

    #[test]
    fn report_budgets_scale_with_graph() {
        let small = generators::ring(16, true);
        let large = generators::ring(4096, true);
        let stats = RunStats::new();
        let a = check_ppa(&small, &stats, PpaCriteria::default());
        let b = check_ppa(&large, &stats, PpaCriteria::default());
        assert!(b.round_budget > a.round_budget);
        assert!(a.is_ppa() && b.is_ppa(), "empty runs trivially satisfy PPA");
    }
}
