//! Batch-count sweeps: the time-vs-#batches series of Figures 2–8.

use crate::executor::{run_job, JobResult, JobSpec};
use crate::schedule::BatchSchedule;
use crate::task::Task;
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Graph;
use mtvc_metrics::Series;
use mtvc_systems::SystemKind;

/// One sweep measurement.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub batches: usize,
    pub result: JobResult,
}

/// The doubling batch counts the paper plots: 1, 2, 4, … up to `max`.
pub fn doubling_batches(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut b = 1usize;
    while b <= max {
        v.push(b);
        b *= 2;
    }
    v
}

/// Run the same (task, system, cluster) under each batch count.
pub fn batch_sweep(
    graph: &Graph,
    task: Task,
    system: SystemKind,
    cluster: &ClusterSpec,
    batch_counts: &[usize],
    seed: u64,
) -> Vec<SweepPoint> {
    batch_counts
        .iter()
        .map(|&k| {
            let spec = JobSpec::new(
                task,
                system,
                cluster.clone(),
                BatchSchedule::equal(task.workload(), k),
            )
            .with_seed(seed);
            SweepPoint {
                batches: k,
                result: run_job(graph, &spec),
            }
        })
        .collect()
}

/// Plot-time series of a sweep (cutoff height for failed runs).
pub fn sweep_series(label: impl Into<String>, points: &[SweepPoint]) -> Series {
    Series::with_values(
        label,
        points
            .iter()
            .map(|p| p.result.plot_time().as_secs())
            .collect(),
    )
}

/// Batch count achieving the minimum time ("the optimal batch" — the
/// optimum among the doubling batches, §4).
pub fn optimal_batches(points: &[SweepPoint]) -> Option<usize> {
    sweep_series("", points).argmin().map(|i| points[i].batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;

    #[test]
    fn doubling_sequence() {
        assert_eq!(doubling_batches(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(doubling_batches(1), vec![1]);
        assert_eq!(doubling_batches(5), vec![1, 2, 4]);
    }

    #[test]
    fn sweep_runs_each_batch_count() {
        let g = generators::power_law(150, 600, 2.4, 23);
        let points = batch_sweep(
            &g,
            Task::bppr(16),
            SystemKind::PregelPlus,
            &ClusterSpec::galaxy(4),
            &[1, 2, 4],
            7,
        );
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].batches, 1);
        assert_eq!(points[2].batches, 4);
        for p in &points {
            assert!(p.result.outcome.is_completed());
        }
        let series = sweep_series("t", &points);
        assert_eq!(series.len(), 3);
        assert!(optimal_batches(&points).is_some());
    }

    #[test]
    fn more_batches_more_rounds() {
        let g = generators::power_law(150, 600, 2.4, 29);
        let points = batch_sweep(
            &g,
            Task::bppr(16),
            SystemKind::PregelPlus,
            &ClusterSpec::galaxy(2),
            &[1, 4],
            9,
        );
        // The round–congestion tradeoff: 4 batches take more rounds
        // and send the same total messages with lower congestion.
        let r1 = &points[0].result.stats;
        let r4 = &points[1].result.stats;
        assert!(r4.rounds > r1.rounds, "{} vs {}", r4.rounds, r1.rounds);
        assert!(r4.congestion() < r1.congestion());
    }
}
