//! The three benchmark multi-processing tasks and their workload units.

use mtvc_graph::hash::mix64;
use mtvc_graph::{Graph, VertexId};
use serde::{Deserialize, Serialize};

/// A multi-processing benchmark task (§2.3).
///
/// The *workload* unit differs per task, exactly as in the paper:
/// BPPR counts random walks per source node; MSSP and BKHS count source
/// nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Task {
    /// Batch Personalized PageRank: `walks_per_node` α-decay walks from
    /// every vertex.
    Bppr { walks_per_node: u64, alpha: f64 },
    /// Multi-source shortest paths from `num_sources` vertices.
    Mssp { num_sources: u64 },
    /// Batch k-hop search from `num_sources` vertices.
    Bkhs { num_sources: u64, k: u32 },
}

impl Task {
    /// BPPR with the paper's default α = 0.2.
    pub fn bppr(walks_per_node: u64) -> Task {
        Task::Bppr {
            walks_per_node,
            alpha: 0.2,
        }
    }

    pub fn mssp(num_sources: u64) -> Task {
        Task::Mssp { num_sources }
    }

    /// BKHS with the common k = 2 (two-hop ego-network analysis,
    /// §2.3's friend-recommendation use case).
    pub fn bkhs(num_sources: u64) -> Task {
        Task::Bkhs { num_sources, k: 2 }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Task::Bppr { .. } => "BPPR",
            Task::Mssp { .. } => "MSSP",
            Task::Bkhs { .. } => "BKHS",
        }
    }

    /// Total workload in this task's unit.
    pub fn workload(&self) -> u64 {
        match *self {
            Task::Bppr { walks_per_node, .. } => walks_per_node,
            Task::Mssp { num_sources } => num_sources,
            Task::Bkhs { num_sources, .. } => num_sources,
        }
    }

    /// Same task shape with a different workload (used to slice
    /// batches and to probe light training workloads).
    pub fn with_workload(&self, w: u64) -> Task {
        match *self {
            Task::Bppr { alpha, .. } => Task::Bppr {
                walks_per_node: w,
                alpha,
            },
            Task::Mssp { .. } => Task::Mssp { num_sources: w },
            Task::Bkhs { k, .. } => Task::Bkhs { num_sources: w, k },
        }
    }

    /// Upper bound on the workload for this task on `g`. Unbounded:
    /// BPPR walks are per-node, and source-based tasks address unit
    /// tasks by query id, so sources may repeat.
    pub fn max_workload(&self, _g: &Graph) -> u64 {
        u64::MAX
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.name(), self.workload())
    }
}

/// Deterministically choose `count` source vertices for source-based
/// tasks: a seeded pseudo-shuffle of the vertex ids, cycled when
/// `count` exceeds the vertex count (each repetition is a distinct
/// unit-task query). Batch `i` takes the slice `[offset, offset+w_i)`,
/// so batches never share a query.
pub fn select_sources(g: &Graph, count: u64, seed: u64) -> Vec<VertexId> {
    let n = g.num_vertices();
    assert!(n > 0, "cannot select sources from an empty graph");
    let mut ids: Vec<VertexId> = g.vertices().collect();
    // Seeded shuffle via sort-by-hash (deterministic, uniform enough
    // for source selection).
    ids.sort_by_key(|&v| mix64(seed ^ (v as u64).wrapping_mul(0x517C_C1B7_2722_0A95)));
    (0..count as usize).map(|i| ids[i % n]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;

    #[test]
    fn workload_units_per_task() {
        assert_eq!(Task::bppr(1024).workload(), 1024);
        assert_eq!(Task::mssp(16).workload(), 16);
        assert_eq!(Task::bkhs(9).workload(), 9);
        assert_eq!(Task::bppr(10).name(), "BPPR");
    }

    #[test]
    fn with_workload_preserves_shape() {
        let t = Task::Bppr {
            walks_per_node: 5,
            alpha: 0.3,
        };
        match t.with_workload(100) {
            Task::Bppr {
                walks_per_node,
                alpha,
            } => {
                assert_eq!(walks_per_node, 100);
                assert_eq!(alpha, 0.3);
            }
            _ => panic!("shape changed"),
        }
        match Task::bkhs(4).with_workload(7) {
            Task::Bkhs { num_sources, k } => {
                assert_eq!((num_sources, k), (7, 2));
            }
            _ => panic!("shape changed"),
        }
    }

    #[test]
    fn source_selection_is_deterministic_and_distinct() {
        let g = generators::ring(100, true);
        let a = select_sources(&g, 20, 7);
        let b = select_sources(&g, 20, 7);
        assert_eq!(a, b);
        // Below the vertex count, sources are distinct.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        let c = select_sources(&g, 20, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn source_prefix_property() {
        // Selecting more sources extends, not reshuffles, the prefix —
        // so batch slices of a bigger selection stay consistent.
        let g = generators::ring(50, true);
        let small = select_sources(&g, 10, 3);
        let large = select_sources(&g, 25, 3);
        assert_eq!(&large[..10], &small[..]);
    }

    #[test]
    fn oversubscribed_sources_cycle() {
        let g = generators::ring(10, true);
        let s = select_sources(&g, 25, 0);
        assert_eq!(s.len(), 25);
        // The cycle repeats the shuffled prefix.
        assert_eq!(s[0], s[10]);
        assert_eq!(s[4], s[14]);
    }

    #[test]
    fn max_workload_semantics() {
        let g = generators::ring(10, true);
        assert_eq!(Task::bppr(1).max_workload(&g), u64::MAX);
        assert_eq!(Task::mssp(1).max_workload(&g), u64::MAX);
    }
}
