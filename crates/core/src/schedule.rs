//! Batch schedules — the round–congestion tradeoff knob.
//!
//! §1: "suppose we need to compute m queries, then we have a large
//! spectrum of round-congestion tradeoff, by computing approximately
//! m/x queries for x batches". A [`BatchSchedule`] lists the per-batch
//! workloads; batches execute sequentially while the unit tasks within
//! a batch run concurrently.

use serde::{Deserialize, Serialize};

/// A division of a total workload into sequential batches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchSchedule {
    batches: Vec<u64>,
}

/// Why an explicit batch list is not a valid schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidSchedule {
    /// The batch list was empty.
    Empty,
    /// A batch had zero workload (its index is carried).
    ZeroBatch(usize),
}

impl std::fmt::Display for InvalidSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidSchedule::Empty => write!(f, "schedule cannot be empty"),
            InvalidSchedule::ZeroBatch(i) => {
                write!(f, "batches must be positive (batch {i} is zero)")
            }
        }
    }
}

impl std::error::Error for InvalidSchedule {}

impl BatchSchedule {
    /// `k` near-equal batches (the paper's *k-batch* mechanism).
    /// Remainders spread over the first batches so sizes differ by at
    /// most one.
    pub fn equal(total: u64, k: usize) -> BatchSchedule {
        assert!(k >= 1, "at least one batch");
        assert!(total >= 1, "workload must be positive");
        let k = (k as u64).min(total) as usize;
        let base = total / k as u64;
        let extra = (total % k as u64) as usize;
        let batches = (0..k).map(|i| base + u64::from(i < extra)).collect();
        BatchSchedule { batches }
    }

    /// 1-batch — all unit tasks processed concurrently.
    pub fn full_parallelism(total: u64) -> BatchSchedule {
        BatchSchedule::equal(total, 1)
    }

    /// An explicit, possibly unequal schedule (tuning output, Fig 9).
    ///
    /// Panics on invalid input; use [`BatchSchedule::try_explicit`] for
    /// schedules built from untrusted or computed data.
    pub fn explicit(batches: Vec<u64>) -> BatchSchedule {
        match BatchSchedule::try_explicit(batches) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validating form of [`BatchSchedule::explicit`]: rejects empty
    /// schedules and zero-sized batches instead of panicking.
    pub fn try_explicit(batches: Vec<u64>) -> Result<BatchSchedule, InvalidSchedule> {
        if batches.is_empty() {
            return Err(InvalidSchedule::Empty);
        }
        if let Some(i) = batches.iter().position(|&b| b == 0) {
            return Err(InvalidSchedule::ZeroBatch(i));
        }
        Ok(BatchSchedule { batches })
    }

    /// Two batches `W/2 + Δ/2` and `W/2 − Δ/2` (Figure 9's sweep over
    /// `Δ = W₁ − W₂`). `delta` must keep both batches positive.
    pub fn two_batch_delta(total: u64, delta: i64) -> BatchSchedule {
        // W1 = (W + Δ)/2 keeps the realized W1 − W2 within one unit of
        // the requested Δ for any parity combination.
        let w1 = (total as i64 + delta) / 2;
        let w2 = total as i64 - w1;
        assert!(
            w1 > 0 && w2 > 0,
            "delta {delta} leaves a non-positive batch (total {total})"
        );
        BatchSchedule {
            batches: vec![w1 as u64, w2 as u64],
        }
    }

    pub fn batches(&self) -> &[u64] {
        &self.batches
    }

    pub fn len(&self) -> usize {
        self.batches.len()
    }

    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    pub fn total(&self) -> u64 {
        self.batches.iter().sum()
    }

    /// Is this Full-Parallelism (a single batch)?
    pub fn is_full_parallelism(&self) -> bool {
        self.batches.len() == 1
    }
}

impl std::fmt::Display for BatchSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_full_parallelism() {
            write!(f, "Full-Parallelism({})", self.total())
        } else {
            write!(f, "{:?}", self.batches)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_batches_cover_total() {
        let s = BatchSchedule::equal(10, 4);
        assert_eq!(s.batches(), &[3, 3, 2, 2]);
        assert_eq!(s.total(), 10);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn equal_caps_batch_count_at_total() {
        let s = BatchSchedule::equal(3, 16);
        assert_eq!(s.len(), 3);
        assert_eq!(s.batches(), &[1, 1, 1]);
    }

    #[test]
    fn full_parallelism_is_one_batch() {
        let s = BatchSchedule::full_parallelism(100);
        assert!(s.is_full_parallelism());
        assert_eq!(s.batches(), &[100]);
    }

    #[test]
    fn two_batch_delta_splits() {
        let s = BatchSchedule::two_batch_delta(12800, 2560);
        assert_eq!(s.batches(), &[7680, 5120]);
        assert_eq!(s.total(), 12800);
        let neg = BatchSchedule::two_batch_delta(12800, -2560);
        assert_eq!(neg.batches(), &[5120, 7680]);
        let zero = BatchSchedule::two_batch_delta(10, 0);
        assert_eq!(zero.batches(), &[5, 5]);
    }

    #[test]
    #[should_panic(expected = "non-positive batch")]
    fn extreme_delta_rejected() {
        BatchSchedule::two_batch_delta(100, 200);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn explicit_rejects_zero_batches() {
        BatchSchedule::explicit(vec![5, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn explicit_rejects_empty_schedule() {
        BatchSchedule::explicit(Vec::new());
    }

    #[test]
    fn try_explicit_reports_both_invariants() {
        assert_eq!(
            BatchSchedule::try_explicit(Vec::new()),
            Err(InvalidSchedule::Empty)
        );
        assert_eq!(
            BatchSchedule::try_explicit(vec![5, 0, 3]),
            Err(InvalidSchedule::ZeroBatch(1))
        );
        let ok = BatchSchedule::try_explicit(vec![5, 3]).unwrap();
        assert_eq!(ok.batches(), &[5, 3]);
        assert_eq!(ok.total(), 8);
    }

    #[test]
    fn invalid_schedule_messages_name_the_violation() {
        assert_eq!(
            InvalidSchedule::Empty.to_string(),
            "schedule cannot be empty"
        );
        assert!(InvalidSchedule::ZeroBatch(2)
            .to_string()
            .contains("batch 2"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            BatchSchedule::full_parallelism(7).to_string(),
            "Full-Parallelism(7)"
        );
        assert_eq!(BatchSchedule::equal(4, 2).to_string(), "[2, 2]");
    }
}
