//! Multi-task processing layer — the paper's primary subject.
//!
//! A *multi-processing job* (§2.3) is a bundle of independent unit
//! tasks (PPR queries, SSSP sources, k-hop sources) executed on a
//! VC-system. This crate provides:
//!
//! * [`task::Task`] — the three benchmark multi-task workloads with
//!   their workload semantics (walks per node for BPPR; source counts
//!   for MSSP/BKHS);
//! * [`schedule::BatchSchedule`] — how a workload is divided into
//!   sequential batches (k-batch, Full-Parallelism, unequal, explicit) —
//!   the *round–congestion tradeoff* knob (§1, Figure 1);
//! * [`executor`] — the batch executor: runs batches sequentially on
//!   the engine, tracks **residual memory** (§4.5/§4.7) across batches,
//!   aggregates statistics and the monetary cost (§4.6);
//! * [`sweep`] — batch-count sweeps producing the figures' time-vs-
//!   batches series;
//! * [`unequal`] — the Δ = W₁ − W₂ two-batch experiments (Figure 9);
//! * [`whole_graph`] — the replicated-graph access mode (§4.9,
//!   Figure 10);
//! * [`ppa`] — §2.4's Practical-Pregel-Algorithm condition checker,
//!   making the "multi-processing cannot be a PPA" argument testable.

pub mod executor;
pub mod ppa;
pub mod schedule;
pub mod sweep;
pub mod task;
pub mod unequal;
pub mod whole_graph;

pub use executor::{
    run_job, BatchExecution, BatchOutcome, BatchRunner, JobResult, JobSpec, LadderStep,
    RecoveredBatch, RecoveryPolicy,
};
pub use ppa::{check_ppa, PpaCriteria, PpaReport};
pub use schedule::{BatchSchedule, InvalidSchedule};
pub use sweep::{batch_sweep, doubling_batches, SweepPoint};
pub use task::{select_sources, Task};
