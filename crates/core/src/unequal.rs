//! Unequal two-batch experiments (§4.7, Figure 9).
//!
//! A fixed workload `W` is divided into `W₁ = W/2 + Δ/2` and
//! `W₂ = W/2 − Δ/2`. For every Δ the figure shows (a) the combined
//! two-batch running time — where batch 2 carries batch 1's residual
//! memory — and (b) each batch run *alone* (stacked bars), which has no
//! residual. The gap between (a) and (b) is the residual-memory cost,
//! and the optimum sits at `W₁ > W₂`.

use crate::executor::{run_job, JobResult, JobSpec};
use crate::schedule::BatchSchedule;
use crate::task::Task;
use mtvc_cluster::ClusterSpec;
use mtvc_graph::Graph;
use mtvc_systems::SystemKind;

/// Measurements for one Δ setting.
#[derive(Debug, Clone)]
pub struct UnequalPoint {
    pub delta: i64,
    /// Two-batch execution (with residual coupling).
    pub combined: JobResult,
    /// First batch executed alone.
    pub first_alone: JobResult,
    /// Second batch executed alone.
    pub second_alone: JobResult,
}

impl UnequalPoint {
    /// Sum of the stand-alone batch times (the stacked right bar).
    pub fn stacked_time(&self) -> f64 {
        self.first_alone.plot_time().as_secs() + self.second_alone.plot_time().as_secs()
    }
}

/// Sweep Δ = W₁ − W₂ for a fixed total workload.
pub fn two_batch_delta_sweep(
    graph: &Graph,
    task: Task,
    system: SystemKind,
    cluster: &ClusterSpec,
    deltas: &[i64],
    seed: u64,
) -> Vec<UnequalPoint> {
    let total = task.workload();
    deltas
        .iter()
        .map(|&delta| {
            let schedule = BatchSchedule::two_batch_delta(total, delta);
            let (w1, w2) = (schedule.batches()[0], schedule.batches()[1]);
            let combined = run_job(
                graph,
                &JobSpec::new(task, system, cluster.clone(), schedule).with_seed(seed),
            );
            let first_alone = run_job(
                graph,
                &JobSpec::new(
                    task.with_workload(w1),
                    system,
                    cluster.clone(),
                    BatchSchedule::full_parallelism(w1),
                )
                .with_seed(seed ^ 0x11),
            );
            let second_alone = run_job(
                graph,
                &JobSpec::new(
                    task.with_workload(w2),
                    system,
                    cluster.clone(),
                    BatchSchedule::full_parallelism(w2),
                )
                .with_seed(seed ^ 0x22),
            );
            UnequalPoint {
                delta,
                combined,
                first_alone,
                second_alone,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;

    #[test]
    fn sweep_produces_all_points() {
        let g = generators::power_law(120, 500, 2.4, 31);
        let points = two_batch_delta_sweep(
            &g,
            Task::bppr(32),
            SystemKind::PregelPlus,
            &ClusterSpec::galaxy(2),
            &[-16, 0, 16],
            3,
        );
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.combined.outcome.is_completed());
            assert!(p.stacked_time() > 0.0);
            // Batch workloads reflect the delta.
            let b = &p.combined.per_batch;
            assert_eq!(b[0].workload as i64 - b[1].workload as i64, p.delta);
        }
    }

    #[test]
    fn combined_run_carries_residual_into_batch_two() {
        let g = generators::power_law(120, 500, 2.4, 37);
        let points = two_batch_delta_sweep(
            &g,
            Task::bppr(32),
            SystemKind::PregelPlus,
            &ClusterSpec::galaxy(2),
            &[0],
            5,
        );
        let p = &points[0];
        // Alone-run of batch 2 has no residual; combined batch 2 does,
        // so its peak memory must be at least as high.
        let combined_b2_mem = p.combined.per_batch[1].peak_memory;
        let alone_b2_mem = p.second_alone.per_batch[0].peak_memory;
        assert!(combined_b2_mem >= alone_b2_mem);
    }
}
