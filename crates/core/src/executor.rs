//! The batch executor: sequential batches, shared residual memory.
//!
//! Batches run one after another on the same cluster; the intermediate
//! results of earlier batches stay resident ("the intermediate results
//! of the i-th batch have to be stored for final result aggregation" —
//! §5), which is the **residual memory** that §4.5 and §4.7 identify as
//! a first-order effect on the optimal batch scheme.

use crate::schedule::BatchSchedule;
use crate::task::{select_sources, Task};
use mtvc_cluster::{ClusterSpec, FaultPlan, MonetaryCost};
use mtvc_engine::{EngineConfig, RunResult, Runner, SlabRecycler, SystemProfile};
use mtvc_graph::hash::mix64;
use mtvc_graph::partition::Partition;
use mtvc_graph::{Graph, VertexId};
use mtvc_metrics::{Bytes, RunOutcome, RunStats, SimTime, OVERLOAD_CUTOFF};
use mtvc_systems::SystemKind;
use mtvc_tasks::bkhs::BkhsState;
use mtvc_tasks::bppr::{BpprState, PushState};
use mtvc_tasks::mssp::MsspState;
use mtvc_tasks::{
    BkhsBroadcastSlabProgram, BkhsSlabProgram, BpprPushSlabProgram, BpprSlabProgram,
    MsspBroadcastSlabProgram, MsspSlabProgram, PushCell, SourceIndex,
};
use std::ops::Range;
use std::sync::Arc;

/// Slab pools shared by every batch of a job (or of a [`BatchRunner`]'s
/// lifetime): a finished batch returns its per-worker state slabs here
/// and the next batch re-fills them in place — zeroed via reset, never
/// re-allocated — so steady-state batching performs no slab allocation.
/// One pool per cell type; MSSP distance rows and BPPR walk counters
/// share the `u64` pool.
#[derive(Debug)]
struct BatchShared {
    words: SlabRecycler<u64>,
    flags: SlabRecycler<u8>,
    push: SlabRecycler<PushCell>,
}

impl Default for BatchShared {
    fn default() -> Self {
        BatchShared {
            words: SlabRecycler::new(),
            flags: SlabRecycler::new(),
            push: SlabRecycler::new(),
        }
    }
}

/// Where a batch's source queries come from.
enum BatchSources<'a> {
    /// An ad-hoc slice (online serving: the caller forms batches).
    Slice(&'a [VertexId]),
    /// A contiguous query range of a job-wide index built once per job
    /// — batches slice it instead of rebuilding the vertex → query map.
    Indexed(Arc<SourceIndex>, Range<usize>),
}

impl BatchSources<'_> {
    fn resolve(self) -> (Arc<SourceIndex>, Range<usize>) {
        match self {
            BatchSources::Slice(s) => (SourceIndex::shared(s.to_vec()), 0..s.len()),
            BatchSources::Indexed(index, range) => (index, range),
        }
    }
}

/// Specification of one multi-processing job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub task: Task,
    pub system: SystemKind,
    pub cluster: ClusterSpec,
    pub schedule: BatchSchedule,
    pub seed: u64,
    /// Whole-job time cutoff (the paper's 6000 s).
    pub cutoff: SimTime,
    /// Override for the engine's parallel cutover
    /// ([`mtvc_engine::PARALLEL_VERTEX_THRESHOLD`] when `None`).
    pub parallel_vertex_threshold: Option<usize>,
}

impl JobSpec {
    pub fn new(
        task: Task,
        system: SystemKind,
        cluster: ClusterSpec,
        schedule: BatchSchedule,
    ) -> JobSpec {
        JobSpec {
            task,
            system,
            cluster,
            schedule,
            seed: 0x0B57,
            cutoff: OVERLOAD_CUTOFF,
            parallel_vertex_threshold: None,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the vertex count at which batches execute on the
    /// engine's persistent worker pool.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_vertex_threshold = Some(threshold);
        self
    }
}

/// Outcome of one batch within a job.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    pub workload: u64,
    pub outcome: RunOutcome,
    pub time: SimTime,
    pub peak_memory: mtvc_metrics::Bytes,
    /// Total residual bytes across workers after this batch completed.
    pub residual_after: u64,
    /// Residual bytes on the most-loaded worker after this batch — the
    /// `M_r^*` quantity the §5 tuning model fits.
    pub residual_max_worker: u64,
}

/// Aggregate result of a multi-processing job.
#[derive(Debug, Clone)]
pub struct JobResult {
    pub outcome: RunOutcome,
    pub stats: RunStats,
    pub per_batch: Vec<BatchOutcome>,
    pub cost: MonetaryCost,
}

impl JobResult {
    /// Simulated seconds to plot (cutoff height for failed runs, as the
    /// paper's figures do).
    pub fn plot_time(&self) -> SimTime {
        self.outcome.plot_time()
    }
}

/// Execute a multi-processing job batch by batch.
pub fn run_job(graph: &Graph, spec: &JobSpec) -> JobResult {
    assert_eq!(
        spec.schedule.total(),
        spec.task.workload(),
        "schedule total must equal the task workload"
    );
    assert!(
        spec.task.workload() <= spec.task.max_workload(graph),
        "workload exceeds the graph's capacity for this task"
    );

    let partition = spec
        .system
        .partitioner()
        .partition(graph, spec.cluster.machines);
    let profile = spec.system.profile(&spec.cluster.machine);

    // Source-based tasks: one global source pool, indexed once here and
    // sliced per batch so batches never repeat a unit task (and never
    // rebuild the vertex → query map).
    let source_pool = match spec.task {
        Task::Bppr { .. } => Vec::new(),
        Task::Mssp { num_sources } | Task::Bkhs { num_sources, .. } => {
            select_sources(graph, num_sources, spec.seed ^ 0xA5A5)
        }
    };
    let source_index = SourceIndex::shared(source_pool);
    let shared = BatchShared::default();

    let mut residual = vec![0u64; spec.cluster.machines];
    let mut stats = RunStats::new();
    let mut per_batch = Vec::with_capacity(spec.schedule.len());
    let mut elapsed = SimTime::ZERO;
    let mut outcome = RunOutcome::Completed(SimTime::ZERO);
    let mut source_offset = 0usize;

    for (i, &w) in spec.schedule.batches().iter().enumerate() {
        let mut cfg = EngineConfig::new(spec.cluster.clone(), profile.clone());
        cfg.seed = spec.seed.wrapping_add(i as u64 + 1);
        cfg.cutoff = spec.cutoff - elapsed;
        cfg.residual_bytes = residual.clone();
        if let Some(t) = spec.parallel_vertex_threshold {
            cfg.parallel_vertex_threshold = t;
        }

        let batch_sources = match spec.task {
            Task::Bppr { .. } => BatchSources::Slice(&[]),
            _ => {
                let range = source_offset..source_offset + w as usize;
                source_offset = range.end;
                BatchSources::Indexed(Arc::clone(&source_index), range)
            }
        };

        let batch = run_one_batch(
            graph,
            partition.clone(),
            cfg,
            spec.system,
            spec.task,
            w,
            batch_sources,
            &shared,
        );
        elapsed += batch.outcome.plot_time().min(spec.cutoff - elapsed);
        stats.absorb(&batch.stats);
        for (r, d) in residual.iter_mut().zip(&batch.residual_delta) {
            *r += d;
        }
        let done = !batch.outcome.is_completed();
        per_batch.push(BatchOutcome {
            workload: w,
            outcome: batch.outcome,
            time: batch.outcome.plot_time(),
            peak_memory: batch.stats.peak_memory,
            residual_after: residual.iter().sum(),
            residual_max_worker: residual.iter().copied().max().unwrap_or(0),
        });
        if done {
            outcome = batch.outcome;
            break;
        }
        if elapsed > spec.cutoff {
            outcome = RunOutcome::Overload;
            break;
        }
        outcome = RunOutcome::Completed(elapsed);
    }

    let cost = MonetaryCost::of_run(outcome, &spec.cluster);
    JobResult {
        outcome,
        stats,
        per_batch,
        cost,
    }
}

/// One formed batch, executed online against live residual state.
///
/// Produced by [`BatchRunner::run_batch`]: the serving layer forms
/// batches dynamically (admission-controlled packing) instead of
/// replaying a precomputed [`BatchSchedule`], so the executor exposes
/// single-batch execution with the caller owning residual-memory
/// bookkeeping across batches.
#[derive(Debug, Clone)]
pub struct BatchExecution {
    /// Workload units executed in this batch.
    pub workload: u64,
    /// Completion / overload / overflow classification.
    pub outcome: RunOutcome,
    /// Simulated duration (cutoff height for failed runs).
    pub time: SimTime,
    /// Engine statistics for this batch alone.
    pub stats: RunStats,
    /// Max per-machine memory observed — the `M*` quantity of §5.
    pub peak_memory: Bytes,
    /// Residual bytes this batch leaves behind, per machine. The caller
    /// adds these to its residual state and passes the sum into the
    /// next `run_batch` call (and subtracts them once results are
    /// aggregated and shipped).
    pub residual_delta: Vec<u64>,
}

/// Reusable single-batch executor for online serving.
///
/// Partitions the graph and resolves the system profile once, then
/// executes formed batches on demand. Unlike [`run_job`], batches need
/// not be known up front, may interleave with other runners, and
/// residual memory is owned by the caller — exactly the shape an
/// admission-controlled service needs.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    graph: Arc<Graph>,
    partition: Partition,
    profile: SystemProfile,
    system: SystemKind,
    cluster: ClusterSpec,
    task: Task,
    parallel_vertex_threshold: Option<usize>,
    faults: Option<FaultPlan>,
    checkpoint_every: Option<usize>,
    /// Slab pools recycled across every batch this runner (and its
    /// clones) executes.
    shared: Arc<BatchShared>,
}

impl BatchRunner {
    /// Prepare an executor for `task`-shaped batches of `system` on
    /// `cluster`. The workload inside `task` is ignored; each call to
    /// [`BatchRunner::run_batch`] supplies its own.
    pub fn new(graph: Arc<Graph>, task: Task, system: SystemKind, cluster: ClusterSpec) -> Self {
        let partition = system.partitioner().partition(&graph, cluster.machines);
        let profile = system.profile(&cluster.machine);
        BatchRunner {
            graph,
            partition,
            profile,
            system,
            cluster,
            task,
            parallel_vertex_threshold: None,
            faults: None,
            checkpoint_every: None,
            shared: Arc::new(BatchShared::default()),
        }
    }

    /// Override the vertex count at which batches execute on the
    /// engine's persistent worker pool.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_vertex_threshold = Some(threshold);
        self
    }

    /// Arm an injected-fault schedule: every batch this runner executes
    /// runs under `plan` (checkpointed, with rollback-replay recovery
    /// for crashes and delivery failures, and the hard OOM kill if the
    /// plan arms it).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Override the engine's checkpoint cadence for fault-tolerant
    /// batches (ignored without [`BatchRunner::with_faults`]).
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Number of machines batches run on.
    pub fn machines(&self) -> usize {
        self.cluster.machines
    }

    /// The cluster batches are priced against.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The task shape this runner executes.
    pub fn task(&self) -> Task {
        self.task
    }

    /// The graph this runner executes on.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Execute one formed batch of `workload` units.
    ///
    /// `sources` must hold exactly `workload` vertices for source-based
    /// tasks (MSSP / BKHS) and is ignored for BPPR. `residual` is the
    /// per-machine residual-memory state (bytes) the batch starts
    /// against — `§4.5/§4.7`'s first-order effect, here maintained by
    /// the caller across batches.
    pub fn run_batch(
        &self,
        workload: u64,
        sources: &[VertexId],
        residual: &[u64],
        seed: u64,
        cutoff: SimTime,
    ) -> BatchExecution {
        self.run_batch_at(workload, sources, residual, seed, cutoff, None)
    }

    /// [`BatchRunner::run_batch`] with a per-batch override of the
    /// parallel cutover: `parallel_threshold = Some(t)` executes this
    /// batch as if the runner were built with
    /// [`BatchRunner::with_parallel_threshold`]`(t)`, without touching
    /// the runner's configuration. The serve layer's joint parallelism
    /// controller uses this to widen intra-task parallelism for lone
    /// wide batches and narrow it when many small batches run
    /// concurrently.
    pub fn run_batch_at(
        &self,
        workload: u64,
        sources: &[VertexId],
        residual: &[u64],
        seed: u64,
        cutoff: SimTime,
        parallel_threshold: Option<usize>,
    ) -> BatchExecution {
        assert!(workload >= 1, "batch workload must be positive");
        assert_eq!(
            residual.len(),
            self.cluster.machines,
            "residual vector must have one entry per machine"
        );
        if !matches!(self.task, Task::Bppr { .. }) {
            assert_eq!(
                sources.len() as u64,
                workload,
                "source-based batches need exactly `workload` sources"
            );
        }
        let mut cfg = EngineConfig::new(self.cluster.clone(), self.profile.clone());
        cfg.seed = seed;
        cfg.cutoff = cutoff;
        cfg.residual_bytes = residual.to_vec();
        if let Some(t) = parallel_threshold.or(self.parallel_vertex_threshold) {
            cfg.parallel_vertex_threshold = t;
        }
        if let Some(plan) = &self.faults {
            cfg.faults = Some(plan.clone());
        }
        if let Some(every) = self.checkpoint_every {
            cfg.checkpoint_every = every;
        }
        let run = run_one_batch(
            &self.graph,
            self.partition.clone(),
            cfg,
            self.system,
            self.task,
            workload,
            BatchSources::Slice(sources),
            &self.shared,
        );
        BatchExecution {
            workload,
            outcome: run.outcome,
            time: run.outcome.plot_time(),
            peak_memory: run.stats.peak_memory,
            stats: run.stats,
            residual_delta: run.residual_delta,
        }
    }

    /// Execute one formed batch with OOM recovery by bisection — the
    /// degradation ladder.
    ///
    /// An overflowed (OOM-killed) batch is never retried verbatim:
    /// narrower batches trade rounds for congestion (the paper's
    /// central tradeoff), so the failed width is split in half and each
    /// half re-executed against the live residual state, recursively
    /// down to width 1 or [`RecoveryPolicy::max_depth`]. Every kill is
    /// also reported in [`RecoveredBatch::censored`] as a `(width,
    /// peak-lower-bound)` pair for the memory model's censored refit.
    /// Overload (time cutoff) is terminal — narrowing raises rounds,
    /// which makes overload worse, not better.
    pub fn run_batch_bisecting(
        &self,
        workload: u64,
        sources: &[VertexId],
        residual: &[u64],
        seed: u64,
        cutoff: SimTime,
        policy: &RecoveryPolicy,
    ) -> RecoveredBatch {
        self.run_batch_bisecting_at(workload, sources, residual, seed, cutoff, policy, None)
    }

    /// [`BatchRunner::run_batch_bisecting`] with a per-batch parallel
    /// cutover override (see [`BatchRunner::run_batch_at`]); every rung
    /// of the degradation ladder inherits the override.
    #[allow(clippy::too_many_arguments)]
    pub fn run_batch_bisecting_at(
        &self,
        workload: u64,
        sources: &[VertexId],
        residual: &[u64],
        seed: u64,
        cutoff: SimTime,
        policy: &RecoveryPolicy,
        parallel_threshold: Option<usize>,
    ) -> RecoveredBatch {
        use std::collections::VecDeque;
        let src_based = !matches!(self.task, Task::Bppr { .. });
        let mut queue: VecDeque<(u64, std::ops::Range<usize>, u32)> = VecDeque::new();
        queue.push_back((workload, 0..sources.len(), 0));

        let mut residual_state = residual.to_vec();
        let mut stats = RunStats::new();
        let mut ladder = Vec::new();
        let mut censored = Vec::new();
        let mut peak = Bytes::ZERO;
        let mut total = SimTime::ZERO;
        let mut residual_delta = vec![0u64; self.cluster.machines];
        let mut index = 0u64;
        let mut outcome = RunOutcome::Completed(SimTime::ZERO);

        while let Some((w, range, depth)) = queue.pop_front() {
            // The unbisected first attempt uses the caller's seed
            // verbatim (identical to `run_batch`); sub-batches derive
            // distinct deterministic seeds.
            let sub_seed = if index == 0 {
                seed
            } else {
                seed ^ mix64(index)
            };
            index += 1;
            let srcs = if src_based {
                &sources[range.clone()]
            } else {
                &[]
            };
            let exec = self.run_batch_at(
                w,
                srcs,
                &residual_state,
                sub_seed,
                cutoff,
                parallel_threshold,
            );
            stats.absorb(&exec.stats);
            peak = peak.max(exec.peak_memory);
            ladder.push(LadderStep {
                width: w,
                outcome: exec.outcome,
            });
            match exec.outcome {
                RunOutcome::Completed(t) => {
                    total += t;
                    for (r, d) in residual_state.iter_mut().zip(&exec.residual_delta) {
                        *r += d;
                    }
                    for (r, d) in residual_delta.iter_mut().zip(&exec.residual_delta) {
                        *r += d;
                    }
                    outcome = RunOutcome::Completed(total);
                }
                RunOutcome::Overflow => {
                    censored.push((w, exec.peak_memory.get() as f64));
                    if w == 1 || depth >= policy.max_depth {
                        outcome = RunOutcome::Overflow;
                        break;
                    }
                    let left = w / 2;
                    let (lr, rr) = if src_based {
                        let mid = range.start + left as usize;
                        (range.start..mid, mid..range.end)
                    } else {
                        (0..0, 0..0)
                    };
                    // Front of the queue, left first: unit-task order
                    // is preserved across the split.
                    queue.push_front((w - left, rr, depth + 1));
                    queue.push_front((left, lr, depth + 1));
                }
                RunOutcome::Overload => {
                    outcome = RunOutcome::Overload;
                    break;
                }
            }
        }

        RecoveredBatch {
            workload,
            outcome,
            time: outcome.plot_time(),
            stats,
            peak_memory: peak,
            residual_delta,
            ladder,
            censored,
        }
    }
}

/// How far [`BatchRunner::run_batch_bisecting`] degrades before giving
/// up on an OOM-killed batch.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Maximum bisection depth: a batch of width `w` shrinks to at most
    /// `w / 2^max_depth` before an overflow becomes terminal.
    pub max_depth: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_depth: 4 }
    }
}

/// One rung of the degradation ladder: a width that was attempted and
/// how it ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderStep {
    pub width: u64,
    pub outcome: RunOutcome,
}

/// Result of [`BatchRunner::run_batch_bisecting`].
#[derive(Debug, Clone)]
pub struct RecoveredBatch {
    /// Workload units of the original (pre-bisection) batch.
    pub workload: u64,
    /// Terminal classification: `Completed` iff every unit task ran to
    /// completion (possibly across several sub-batches).
    pub outcome: RunOutcome,
    /// Simulated duration (sum over completed sub-batches; cutoff
    /// height for failed runs).
    pub time: SimTime,
    /// Merged engine statistics over every attempt, failed ones
    /// included (`stats.faults.oom_kills` counts the kills).
    pub stats: RunStats,
    /// Max per-machine memory observed across all attempts.
    pub peak_memory: Bytes,
    /// Residual bytes left behind by *completed* sub-batches, per
    /// machine.
    pub residual_delta: Vec<u64>,
    /// Every width attempted, in execution order — the shrinking
    /// ladder.
    pub ladder: Vec<LadderStep>,
    /// `(width, peak-lower-bound-bytes)` for each OOM kill: censored
    /// observations for the `mtvc-tune` online model refit.
    pub censored: Vec<(u64, f64)>,
}

struct BatchRun {
    outcome: RunOutcome,
    stats: RunStats,
    residual_delta: Vec<u64>,
}

#[allow(clippy::too_many_arguments)]
fn run_one_batch(
    graph: &Graph,
    partition: Partition,
    cfg: EngineConfig,
    system: SystemKind,
    task: Task,
    workload: u64,
    sources: BatchSources<'_>,
    shared: &BatchShared,
) -> BatchRun {
    let broadcast = system.is_broadcast();
    match task {
        Task::Bppr { alpha, .. } => {
            let n = graph.num_vertices();
            if broadcast {
                let prog = BpprPushSlabProgram::new(workload, alpha, n);
                execute(
                    graph,
                    partition,
                    cfg,
                    |r| r.run_slab_recycled(&prog, &shared.push),
                    |st: &PushState| {
                        // Residual: fractional stop masses, one f64
                        // record per (vertex, source) entry.
                        st.mass.len() as u64 * 16
                    },
                )
            } else {
                let prog = BpprSlabProgram::new(workload, alpha, n);
                execute(
                    graph,
                    partition,
                    cfg,
                    |r| r.run_slab_recycled(&prog, &shared.words),
                    |st: &BpprState| {
                        // §5: "we need to store the ending nodes of
                        // every random walk computed in each batch" —
                        // residual scales with the walk count, not just
                        // distinct entries.
                        st.stops.values().sum::<u64>() * 8 + st.stops.len() as u64 * 16
                    },
                )
            }
        }
        Task::Mssp { .. } => {
            let (index, range) = sources.resolve();
            let residual = |st: &MsspState| st.dist.len() as u64 * 16;
            if broadcast {
                let prog = MsspBroadcastSlabProgram::batch(index, range);
                execute(
                    graph,
                    partition,
                    cfg,
                    |r| r.run_slab_recycled(&prog, &shared.words),
                    residual,
                )
            } else {
                let prog = MsspSlabProgram::batch(index, range);
                execute(
                    graph,
                    partition,
                    cfg,
                    |r| r.run_slab_recycled(&prog, &shared.words),
                    residual,
                )
            }
        }
        Task::Bkhs { k, .. } => {
            let (index, range) = sources.resolve();
            // Residual: bitmap-encoded reach flags, ~1 byte per
            // (query, vertex) flag (see mtvc-tasks::bkhs docs).
            let residual = |st: &BkhsState| st.reached.len() as u64;
            if broadcast {
                let prog = BkhsBroadcastSlabProgram::batch(index, range, k);
                execute(
                    graph,
                    partition,
                    cfg,
                    |r| r.run_slab_recycled(&prog, &shared.flags),
                    residual,
                )
            } else {
                let prog = BkhsSlabProgram::batch(index, range, k);
                execute(
                    graph,
                    partition,
                    cfg,
                    |r| r.run_slab_recycled(&prog, &shared.flags),
                    residual,
                )
            }
        }
    }
}

/// Run one batch (the `run` closure picks the program and state layout)
/// and fold its extracted states into per-worker residual bytes.
fn execute<S: Default + Clone + Send>(
    graph: &Graph,
    partition: Partition,
    cfg: EngineConfig,
    run: impl FnOnce(&Runner) -> RunResult<S>,
    residual_of: impl Fn(&S) -> u64,
) -> BatchRun {
    let workers = partition.num_workers();
    let owner: Vec<u16> = graph.vertices().map(|v| partition.owner_of(v)).collect();
    let runner = Runner::with_partition(graph, partition, cfg);
    let result = run(&runner);
    let mut residual_delta = vec![0u64; workers];
    for (v, state) in result.states.iter().enumerate() {
        residual_delta[owner[v] as usize] += residual_of(state);
    }
    BatchRun {
        outcome: result.outcome,
        stats: result.stats,
        residual_delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvc_graph::generators;

    fn small_graph() -> Graph {
        generators::power_law(200, 900, 2.4, 17)
    }

    fn spec(task: Task, batches: usize) -> JobSpec {
        JobSpec::new(
            task,
            SystemKind::PregelPlus,
            ClusterSpec::galaxy(4),
            BatchSchedule::equal(task.workload(), batches),
        )
    }

    #[test]
    fn bppr_job_completes_and_accumulates_residual() {
        let g = small_graph();
        let r = run_job(&g, &spec(Task::bppr(32), 2));
        assert!(r.outcome.is_completed());
        assert_eq!(r.per_batch.len(), 2);
        assert!(r.per_batch[0].residual_after > 0);
        assert!(r.per_batch[1].residual_after > r.per_batch[0].residual_after);
        assert!(r.stats.total_messages_sent > 0);
    }

    #[test]
    fn mssp_job_runs_all_source_batches() {
        let g = small_graph();
        let r = run_job(&g, &spec(Task::mssp(16), 4));
        assert!(r.outcome.is_completed());
        assert_eq!(r.per_batch.len(), 4);
        let total: u64 = r.per_batch.iter().map(|b| b.workload).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn bkhs_job_completes() {
        let g = small_graph();
        let r = run_job(&g, &spec(Task::bkhs(8), 2));
        assert!(r.outcome.is_completed());
    }

    #[test]
    fn mirror_system_runs_broadcast_variants() {
        let g = small_graph();
        let mut s = spec(Task::bppr(8), 2);
        s.system = SystemKind::PregelPlusMirror;
        let r = run_job(&g, &s);
        assert!(r.outcome.is_completed(), "{:?}", r.outcome);
    }

    #[test]
    fn batch_times_sum_to_job_time() {
        let g = small_graph();
        let r = run_job(&g, &spec(Task::bppr(16), 4));
        let sum: f64 = r.per_batch.iter().map(|b| b.time.as_secs()).sum();
        match r.outcome {
            RunOutcome::Completed(t) => assert!((t.as_secs() - sum).abs() < 1e-6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "schedule total")]
    fn mismatched_schedule_rejected() {
        let g = small_graph();
        let mut s = spec(Task::bppr(16), 2);
        s.schedule = BatchSchedule::equal(10, 2);
        run_job(&g, &s);
    }

    #[test]
    fn local_cluster_jobs_cost_nothing() {
        let g = small_graph();
        let r = run_job(&g, &spec(Task::bppr(8), 1));
        assert_eq!(r.cost.credits, 0.0);
    }

    #[test]
    fn cloud_jobs_are_metered() {
        let g = small_graph();
        let mut s = spec(Task::bppr(8), 1);
        s.cluster = ClusterSpec::docker(4);
        let r = run_job(&g, &s);
        assert!(r.cost.credits > 0.0);
    }

    #[test]
    fn batch_runner_replays_a_schedule_like_run_job() {
        let g = Arc::new(small_graph());
        let task = Task::bppr(32);
        let schedule = BatchSchedule::equal(32, 2);
        let job = run_job(&g, &spec(task, 2));

        let runner = BatchRunner::new(
            Arc::clone(&g),
            task,
            SystemKind::PregelPlus,
            ClusterSpec::galaxy(4),
        );
        let mut residual = vec![0u64; runner.machines()];
        let mut execs = Vec::new();
        for (i, &w) in schedule.batches().iter().enumerate() {
            let e = runner.run_batch(w, &[], &residual, 0x0B57 + i as u64 + 1, OVERLOAD_CUTOFF);
            for (r, d) in residual.iter_mut().zip(&e.residual_delta) {
                *r += d;
            }
            execs.push(e);
        }
        // Same batch structure: residual accumulates identically.
        assert_eq!(execs.len(), job.per_batch.len());
        assert_eq!(
            residual.iter().sum::<u64>(),
            job.per_batch.last().unwrap().residual_after
        );
        assert!(execs.iter().all(|e| e.outcome.is_completed()));
    }

    #[test]
    fn batch_runner_residual_raises_memory_pressure() {
        let g = Arc::new(small_graph());
        let runner = BatchRunner::new(
            g,
            Task::bppr(8),
            SystemKind::PregelPlus,
            ClusterSpec::galaxy(4),
        );
        let clean = runner.run_batch(8, &[], &[0; 4], 7, OVERLOAD_CUTOFF);
        let loaded = runner.run_batch(8, &[], &[Bytes::gib(1).get(); 4], 7, OVERLOAD_CUTOFF);
        assert!(loaded.peak_memory > clean.peak_memory);
    }

    #[test]
    fn batch_runner_source_tasks_take_explicit_sources() {
        let g = Arc::new(small_graph());
        let runner = BatchRunner::new(
            Arc::clone(&g),
            Task::mssp(4),
            SystemKind::PregelPlus,
            ClusterSpec::galaxy(4),
        );
        let sources = select_sources(&g, 4, 99);
        let e = runner.run_batch(4, &sources, &[0; 4], 1, OVERLOAD_CUTOFF);
        assert!(e.outcome.is_completed());
        assert!(e.residual_delta.iter().sum::<u64>() > 0);
    }

    #[test]
    #[should_panic(expected = "exactly `workload` sources")]
    fn batch_runner_rejects_source_count_mismatch() {
        let g = Arc::new(small_graph());
        let runner = BatchRunner::new(
            g,
            Task::mssp(4),
            SystemKind::PregelPlus,
            ClusterSpec::galaxy(4),
        );
        runner.run_batch(4, &[], &[0; 4], 1, OVERLOAD_CUTOFF);
    }

    #[test]
    fn parallel_threshold_does_not_change_results() {
        let g = small_graph();
        let serial = run_job(&g, &spec(Task::bppr(16), 2));
        let mut s = spec(Task::bppr(16), 2);
        s = s.with_parallel_threshold(1); // force the pooled pipeline
        let pooled = run_job(&g, &s);
        assert_eq!(
            serial.stats.total_messages_sent,
            pooled.stats.total_messages_sent
        );
        assert_eq!(serial.plot_time(), pooled.plot_time());

        let runner = BatchRunner::new(
            Arc::new(small_graph()),
            Task::bppr(8),
            SystemKind::PregelPlus,
            ClusterSpec::galaxy(4),
        )
        .with_parallel_threshold(1);
        let e = runner.run_batch(8, &[], &[0; 4], 7, OVERLOAD_CUTOFF);
        assert!(e.outcome.is_completed());
    }

    #[test]
    fn bisecting_without_faults_matches_run_batch() {
        let g = Arc::new(small_graph());
        let runner = BatchRunner::new(
            g,
            Task::bppr(8),
            SystemKind::PregelPlus,
            ClusterSpec::galaxy(4),
        );
        let plain = runner.run_batch(8, &[], &[0; 4], 7, OVERLOAD_CUTOFF);
        let rec = runner.run_batch_bisecting(
            8,
            &[],
            &[0; 4],
            7,
            OVERLOAD_CUTOFF,
            &RecoveryPolicy::default(),
        );
        assert_eq!(rec.outcome, plain.outcome);
        assert_eq!(rec.stats, plain.stats, "single rung = identical run");
        assert_eq!(rec.residual_delta, plain.residual_delta);
        assert_eq!(rec.ladder.len(), 1);
        assert!(rec.censored.is_empty());
    }

    #[test]
    fn oom_killed_batch_degrades_to_narrower_widths() {
        let g = Arc::new(small_graph());
        let sources = select_sources(&g, 8, 99);
        // Probe the memory curve: peak of the full width vs the peaks
        // of its halves run sequentially with residual carried over.
        let probe = BatchRunner::new(
            Arc::clone(&g),
            Task::mssp(8),
            SystemKind::PregelPlus,
            ClusterSpec::galaxy(4),
        );
        let wide = probe.run_batch(8, &sources, &[0; 4], 1, OVERLOAD_CUTOFF);
        let a = probe.run_batch(4, &sources[..4], &[0; 4], 1, OVERLOAD_CUTOFF);
        let mut resid = vec![0u64; 4];
        for (r, d) in resid.iter_mut().zip(&a.residual_delta) {
            *r += d;
        }
        let b = probe.run_batch(4, &sources[4..], &resid, 2, OVERLOAD_CUTOFF);
        let narrow_peak = a.peak_memory.max(b.peak_memory);
        assert!(
            wide.peak_memory > narrow_peak,
            "halving must shrink the peak: {} vs {}",
            wide.peak_memory.get(),
            narrow_peak.get()
        );

        // Capacity between the two: the full batch is OOM-killed, its
        // halves fit — the ladder must recover.
        let mut cluster = ClusterSpec::galaxy(4);
        cluster.machine.memory = Bytes((narrow_peak.get() + wide.peak_memory.get()) / 2);
        let runner = BatchRunner::new(
            Arc::clone(&g),
            Task::mssp(8),
            SystemKind::PregelPlus,
            cluster,
        )
        .with_faults(FaultPlan::none().with_hard_oom());
        let rec = runner.run_batch_bisecting(
            8,
            &sources,
            &[0; 4],
            1,
            OVERLOAD_CUTOFF,
            &RecoveryPolicy::default(),
        );
        assert!(rec.outcome.is_completed(), "{:?}", rec.outcome);
        assert!(rec.ladder.len() >= 3, "ladder: {:?}", rec.ladder);
        assert_eq!(rec.ladder[0].width, 8);
        assert!(rec.ladder[0].outcome.is_overflow());
        assert!(rec.ladder[1..].iter().all(|s| s.width < 8));
        assert_eq!(rec.censored.len(), 1, "one kill = one censored point");
        assert_eq!(rec.censored[0].0, 8);
        assert!(rec.stats.faults.oom_kills >= 1);
        assert!(rec.residual_delta.iter().sum::<u64>() > 0);
    }

    #[test]
    fn hopeless_batch_fails_typed_after_ladder_exhausts() {
        let g = Arc::new(small_graph());
        let sources = select_sources(&g, 8, 99);
        let mut cluster = ClusterSpec::galaxy(4);
        cluster.machine.memory = Bytes::kib(1); // nothing fits
        let runner = BatchRunner::new(
            Arc::clone(&g),
            Task::mssp(8),
            SystemKind::PregelPlus,
            cluster,
        )
        .with_faults(FaultPlan::none().with_hard_oom());
        let rec = runner.run_batch_bisecting(
            8,
            &sources,
            &[0; 4],
            1,
            OVERLOAD_CUTOFF,
            &RecoveryPolicy::default(),
        );
        assert!(rec.outcome.is_overflow(), "typed terminal failure");
        // The ladder shrinks 8 → 4 → 2 → 1 and stops at width 1.
        let widths: Vec<u64> = rec.ladder.iter().map(|s| s.width).collect();
        assert_eq!(widths, vec![8, 4, 2, 1]);
        assert_eq!(rec.censored.len(), 4, "every kill reported");
    }

    #[test]
    fn injected_crashes_do_not_change_batch_results() {
        let g = Arc::new(small_graph());
        let runner = BatchRunner::new(
            Arc::clone(&g),
            Task::bppr(8),
            SystemKind::PregelPlus,
            ClusterSpec::galaxy(4),
        );
        let clean = runner.run_batch(8, &[], &[0; 4], 7, OVERLOAD_CUTOFF);
        let chaotic = runner
            .clone()
            .with_faults(FaultPlan::random(11, 4, 6, 2, 1))
            .with_checkpoint_every(2)
            .run_batch(8, &[], &[0; 4], 7, OVERLOAD_CUTOFF);
        assert_eq!(clean.outcome, chaotic.outcome);
        assert_eq!(clean.time, chaotic.time);
        assert_eq!(clean.residual_delta, chaotic.residual_delta);
        let mut scrubbed = chaotic.stats.clone();
        scrubbed.faults = Default::default();
        assert_eq!(scrubbed, clean.stats);
    }

    #[test]
    fn determinism_across_invocations() {
        let g = small_graph();
        let a = run_job(&g, &spec(Task::bppr(16), 2));
        let b = run_job(&g, &spec(Task::bppr(16), 2));
        assert_eq!(a.stats.total_messages_sent, b.stats.total_messages_sent);
        assert_eq!(a.plot_time(), b.plot_time());
    }
}
