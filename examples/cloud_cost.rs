//! Monetary cost in the cloud (§4.6): the same job under different
//! batch settings produces very different credit bills; overloaded
//! settings are billed as lower bounds (`>$x`).
//!
//! ```sh
//! cargo run --release --example cloud_cost
//! ```

use mtvc::cluster::ClusterSpec;
use mtvc::graph::Dataset;
use mtvc::metrics::{row, Table};
use mtvc::multitask::{run_job, BatchSchedule, JobSpec, Task};
use mtvc::systems::SystemKind;

fn main() {
    let dataset = Dataset::Dblp;
    let graph = dataset.generate_default();
    let cluster = ClusterSpec::docker32().scaled(dataset.info().default_scale as f64);
    let task = Task::bppr(40960);

    let mut table = Table::new(
        "cloud credits vs batch setting (BPPR 40960, Docker-32)",
        &["batches", "outcome", "credits"],
    );
    let mut best: Option<(usize, f64)> = None;
    for batches in [1usize, 2, 4, 8, 16] {
        let spec = JobSpec::new(
            task,
            SystemKind::PregelPlus,
            cluster.clone(),
            BatchSchedule::equal(task.workload(), batches),
        );
        let r = run_job(&graph, &spec);
        if !r.cost.lower_bound && best.map(|(_, c)| r.cost.credits < c).unwrap_or(true) {
            best = Some((batches, r.cost.credits));
        }
        table.row(row!(batches, r.outcome, r.cost));
    }
    table.print();
    if let Some((batches, credits)) = best {
        println!("cheapest batch setting: {batches} batches at ${credits:.0}");
    }
}
