//! The §4.9 whole-graph access mode: replicate the graph on every
//! machine, partition the workload instead of the vertices, and pay a
//! final aggregation. Compare with the default (partitioned) mode.
//!
//! ```sh
//! cargo run --release --example whole_graph_mode
//! ```

use mtvc::cluster::ClusterSpec;
use mtvc::graph::Dataset;
use mtvc::metrics::{row, Table};
use mtvc::multitask::whole_graph::run_whole_graph;
use mtvc::multitask::{run_job, BatchSchedule, JobSpec, Task};
use mtvc::systems::SystemKind;

fn main() {
    let dataset = Dataset::Dblp;
    let graph = dataset.generate_default();
    let cluster = ClusterSpec::galaxy8().scaled(dataset.info().default_scale as f64);
    let task = Task::bppr(10240);

    let mut table = Table::new(
        "default (partitioned) vs whole-graph (replicated) mode",
        &[
            "batches",
            "default mode",
            "whole-graph algorithm",
            "aggregation",
            "whole-graph total",
        ],
    );
    for batches in [1usize, 2, 4, 8] {
        let default_mode = run_job(
            &graph,
            &JobSpec::new(
                task,
                SystemKind::PregelPlus,
                cluster.clone(),
                BatchSchedule::equal(task.workload(), batches),
            ),
        );
        let wg = run_whole_graph(&graph, task, SystemKind::PregelPlus, &cluster, batches, 42);
        table.row(row!(
            batches,
            default_mode.outcome,
            format!("{:.1}s", wg.algorithm_time().as_secs()),
            format!("{:.1}s", wg.aggregation.as_secs()),
            wg.outcome
        ));
    }
    table.print();
    println!("note: whole-graph mode avoids network traffic during the algorithm");
    println!("phase but replicates the full adjacency into every machine's memory.");
}
