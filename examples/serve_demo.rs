//! The serving layer end to end: a generated production trace — Zipf
//! tenant skew, bursty arrivals, three SLO classes, mixed task shapes
//! — replayed open-loop against a Galaxy8-class cluster under the
//! SLO-aware scheduler. The service trains the §5 memory model at
//! startup, packs arrivals into the largest admissible batches (Eq. 6
//! against live residual + in-flight state), orders lanes
//! EDF-within-DRR, and reports per-class latency percentiles. The same
//! trace is then replayed as per-shape Full-Parallelism jobs — the §4
//! baseline — for comparison.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use mtvc::cluster::ClusterSpec;
use mtvc::graph::Dataset;
use mtvc::loadgen::{drive, generate, ClassMix, DriveCfg, Scenario};
use mtvc::multitask::{run_job, BatchSchedule, JobSpec, Task};
use mtvc::serve::{SchedulerPolicy, ServiceConfig, SloClass, TaskService};
use mtvc::systems::SystemKind;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let dataset = Dataset::Dblp;
    let graph = Arc::new(dataset.generate_default());
    let cluster = ClusterSpec::galaxy8().scaled(dataset.info().default_scale as f64);
    let system = SystemKind::PregelPlus;
    println!(
        "cluster: {} ({} machines), graph: dblp ({} vertices)",
        cluster.name,
        cluster.machines,
        graph.num_vertices()
    );

    // ---- the scenario --------------------------------------------------
    // A deterministic production shape: nine tenants with Zipf(1.2)
    // popularity skew, ~150 req/s baseline with correlated burst
    // episodes, three task shapes at different widths, and the three
    // SLO classes with deadlines generous enough that the whole trace
    // completes (the tight-deadline story lives in `bench_pr6`).
    let scenario = Scenario::new("serve-demo", 9, 150.0, Duration::from_millis(600))
        .with_zipf_exponent(1.2)
        .with_bursts(Duration::from_millis(200), Duration::from_millis(80), 2.0)
        .with_shape(Task::bppr(1), 4.0, 256..=768)
        .with_shape(Task::mssp(1), 3.0, 1..=5)
        .with_shape(Task::bkhs(1), 3.0, 1..=5)
        .with_classes(ClassMix {
            weights: [0.2, 0.5, 0.3],
            deadlines: [
                Some(Duration::from_secs(60)),
                Some(Duration::from_secs(300)),
                None,
            ],
        });
    let trace = generate(&scenario, 0x00D5_CADE);
    let total_units = |name: &str| -> u64 {
        trace
            .events
            .iter()
            .filter(|e| e.task.name() == name)
            .map(|e| e.task.workload())
            .sum()
    };
    println!(
        "trace: {} requests over {:.2}s, fingerprint {:#018x}",
        trace.len(),
        trace.span().as_secs_f64(),
        trace.fingerprint(),
    );
    println!(
        "  classes {:?}  (BPPR {} walks, MSSP {} sources, BKHS {} sources)\n",
        trace.class_counts(),
        total_units("BPPR"),
        total_units("MSSP"),
        total_units("BKHS"),
    );

    // ---- adaptive service under the SLO-aware scheduler ----------------
    let cfg = ServiceConfig::new(system, cluster.clone())
        .with_shape(Task::bppr(1))
        .with_shape(Task::mssp(1))
        .with_shape(Task::bkhs(1))
        .with_workers(2)
        .with_quantum(256)
        .with_queue_capacity(512)
        .with_scheduler(SchedulerPolicy::SloAware)
        .with_seed(0xFEED);
    let svc = TaskService::start(graph.clone(), cfg).expect("service start");
    for shape in [Task::bppr(1), Task::mssp(1), Task::bkhs(1)] {
        println!(
            "  model ceiling for {}: {} units/batch",
            shape.name(),
            svc.admissible_max(&shape).expect("shape registered")
        );
    }

    let t0 = Instant::now();
    let rep = drive(&svc, &trace, DriveCfg::default());
    let report = svc.shutdown();
    let wall = t0.elapsed();

    assert_eq!(rep.offered(), trace.len() as u64, "every event offered");
    assert_eq!(rep.shed, 0, "queue sized for the trace: nothing shed");
    assert_eq!(report.served, rep.submitted, "all requests served");
    assert_eq!(report.overload_batches, 0, "no batch overloaded");
    assert_eq!(report.overflow_batches, 0, "no batch overflowed");

    let (p50, p95, p99) = report.latency.p50_p95_p99();
    let (w50, w95, w99) = report.queue_wait.p50_p95_p99();
    println!("\nadaptive service (SLO-aware, admission p = 0.85, 2 workers):");
    println!(
        "  served {}/{} requests, 0 overload / 0 overflow batches",
        report.served,
        trace.len()
    );
    println!(
        "  throughput: {:.1} req/s  (wall {:.2}s)",
        report.served as f64 / wall.as_secs_f64(),
        wall.as_secs_f64()
    );
    println!(
        "  latency   p50/p95/p99: {:.1} / {:.1} / {:.1} ms",
        p50 as f64 / 1e3,
        p95 as f64 / 1e3,
        p99 as f64 / 1e3
    );
    println!(
        "  queue wait p50/p95/p99: {:.1} / {:.1} / {:.1} ms",
        w50 as f64 / 1e3,
        w95 as f64 / 1e3,
        w99 as f64 / 1e3
    );
    for class in SloClass::ALL {
        let cr = report.class(class);
        let (c50, _, c99) = cr.latency.p50_p95_p99();
        println!(
            "  class {:<11} served {:>3}, deadlines met {:>3}/{:<3}, latency p50/p99 {:.1}/{:.1} ms",
            class.label(),
            cr.served,
            cr.deadline_met,
            cr.deadline_met + cr.deadline,
            c50 as f64 / 1e3,
            c99 as f64 / 1e3,
        );
    }
    println!(
        "  batches: {} (workload p50 {} units), controller: {} decisions \
         ({} narrowed, {} widened, {} deadline-capped)",
        report.batches,
        report.batch_workload.quantile(0.5),
        report.controller.decisions,
        report.controller.narrowed,
        report.controller.widened,
        report.controller.deadline_capped,
    );
    println!(
        "  max queue depth: {} requests (time-weighted mean {:.1}), simulated cluster time: {}",
        report.max_queue_depth,
        report.queue_depth_series.time_weighted_mean(),
        report.total_sim_time
    );

    // ---- Full-Parallelism baseline on the same trace ------------------
    // The §4 baseline has no admission control: each task kind's whole
    // trace workload runs as one maximal batch.
    println!("\nfull-parallelism baseline (same trace, one batch per kind):");
    let mut baseline_total = mtvc::metrics::SimTime::ZERO;
    for shape in [Task::bppr(1), Task::mssp(1), Task::bkhs(1)] {
        let total = total_units(shape.name());
        if total == 0 {
            continue;
        }
        let job = run_job(
            &graph,
            &JobSpec::new(
                shape.with_workload(total),
                system,
                cluster.clone(),
                BatchSchedule::full_parallelism(total),
            ),
        );
        println!("  {}({}): {}", shape.name(), total, job.outcome);
        baseline_total += job.plot_time();
    }
    println!(
        "\ntotal simulated time — adaptive: {}  vs  full-parallelism: {}",
        report.total_sim_time, baseline_total
    );
    assert!(
        report.total_sim_time < baseline_total,
        "adaptive batching should beat full parallelism on this trace"
    );
    println!("adaptive batching wins: the tuner-driven former kept every");
    println!("machine under p·M while full parallelism paid the strain.");
}
