//! The serving layer end to end: an open-loop, Poisson-ish stream of
//! unit-task requests from three tenants against a Galaxy8-class
//! cluster. The service trains the §5 memory model at startup, packs
//! arrivals into the largest admissible batches (Eq. 6 against live
//! residual + in-flight state), and reports latency percentiles. The
//! same trace is then replayed as per-shape Full-Parallelism jobs —
//! the §4 baseline — for comparison.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use mtvc::cluster::ClusterSpec;
use mtvc::graph::Dataset;
use mtvc::multitask::{run_job, BatchSchedule, JobSpec, Task};
use mtvc::serve::{ServiceConfig, TaskRequest, TaskService, TenantId};
use mtvc::systems::SystemKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let dataset = Dataset::Dblp;
    let graph = Arc::new(dataset.generate_default());
    let cluster = ClusterSpec::galaxy8().scaled(dataset.info().default_scale as f64);
    let system = SystemKind::PregelPlus;
    println!(
        "cluster: {} ({} machines), graph: dblp ({} vertices)",
        cluster.name,
        cluster.machines,
        graph.num_vertices()
    );

    // ---- synthesize the open-loop trace -------------------------------
    // Poisson-ish arrivals: exponential inter-arrival times at `lambda`
    // requests/second, three tenants, mixed task kinds.
    let mut rng = SmallRng::seed_from_u64(0x00D5_CADE);
    let lambda = 150.0;
    let mut at = 0.0f64;
    let mut trace: Vec<(f64, TenantId, Task)> = Vec::new();
    for i in 0..90u32 {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        at += -u.ln() / lambda;
        let tenant = TenantId(i % 3);
        let task = match rng.gen_range(0..10u32) {
            0..=3 => Task::bppr(rng.gen_range(256..768u64)),
            4..=6 => Task::mssp(rng.gen_range(1..6u64)),
            _ => Task::bkhs(rng.gen_range(1..6u64)),
        };
        trace.push((at, tenant, task));
    }
    let total_units = |name: &str| -> u64 {
        trace
            .iter()
            .filter(|(_, _, t)| t.name() == name)
            .map(|(_, _, t)| t.workload())
            .sum()
    };
    println!(
        "trace: {} requests over {:.2}s  (BPPR {} walks, MSSP {} sources, BKHS {} sources)\n",
        trace.len(),
        at,
        total_units("BPPR"),
        total_units("MSSP"),
        total_units("BKHS"),
    );

    // ---- adaptive service ---------------------------------------------
    let cfg = ServiceConfig::new(system, cluster.clone())
        .with_shape(Task::bppr(1))
        .with_shape(Task::mssp(1))
        .with_shape(Task::bkhs(1))
        .with_workers(2)
        .with_quantum(256)
        .with_queue_capacity(128)
        .with_seed(0xFEED);
    let svc = TaskService::start(graph.clone(), cfg).expect("service start");
    for shape in [Task::bppr(1), Task::mssp(1), Task::bkhs(1)] {
        println!(
            "  model ceiling for {}: {} units/batch",
            shape.name(),
            svc.admissible_max(&shape).expect("shape registered")
        );
    }

    let t0 = Instant::now();
    let mut tickets = Vec::with_capacity(trace.len());
    for (arrival, tenant, task) in &trace {
        let target = Duration::from_secs_f64(*arrival);
        let elapsed = t0.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
        let req = TaskRequest::new(*tenant, *task).with_deadline(Duration::from_secs(300));
        tickets.push(svc.submit(req).expect("submit"));
    }
    for t in &tickets {
        let c = t.wait();
        assert!(
            c.outcome.is_served(),
            "request {} ended {:?}",
            c.id,
            c.outcome
        );
    }
    let report = svc.shutdown();
    let wall = t0.elapsed();

    assert_eq!(report.served, trace.len() as u64, "all requests served");
    assert_eq!(report.overload_batches, 0, "no batch overloaded");
    assert_eq!(report.overflow_batches, 0, "no batch overflowed");

    let (p50, p95, p99) = report.latency.p50_p95_p99();
    let (w50, w95, w99) = report.queue_wait.p50_p95_p99();
    println!("adaptive service (admission p = 0.85, 2 workers):");
    println!(
        "  served {}/{} requests, 0 overload / 0 overflow batches",
        report.served,
        trace.len()
    );
    println!(
        "  throughput: {:.1} req/s  (wall {:.2}s)",
        report.served as f64 / wall.as_secs_f64(),
        wall.as_secs_f64()
    );
    println!(
        "  latency   p50/p95/p99: {:.1} / {:.1} / {:.1} ms",
        p50 as f64 / 1e3,
        p95 as f64 / 1e3,
        p99 as f64 / 1e3
    );
    println!(
        "  queue wait p50/p95/p99: {:.1} / {:.1} / {:.1} ms",
        w50 as f64 / 1e3,
        w95 as f64 / 1e3,
        w99 as f64 / 1e3
    );
    println!(
        "  batches: {} (workload p50 {} units), flush epochs: {}, model refits: {}",
        report.batches,
        report.batch_workload.quantile(0.5),
        report.flushes,
        report.refits
    );
    println!(
        "  max queue depth: {} requests, simulated cluster time: {}",
        report.max_queue_depth, report.total_sim_time
    );

    // ---- Full-Parallelism baseline on the same trace ------------------
    // The §4 baseline has no admission control: each task kind's whole
    // trace workload runs as one maximal batch.
    println!("\nfull-parallelism baseline (same trace, one batch per kind):");
    let mut baseline_total = mtvc::metrics::SimTime::ZERO;
    for shape in [Task::bppr(1), Task::mssp(1), Task::bkhs(1)] {
        let total = total_units(shape.name());
        if total == 0 {
            continue;
        }
        let job = run_job(
            &graph,
            &JobSpec::new(
                shape.with_workload(total),
                system,
                cluster.clone(),
                BatchSchedule::full_parallelism(total),
            ),
        );
        println!("  {}({}): {}", shape.name(), total, job.outcome);
        baseline_total += job.plot_time();
    }
    println!(
        "\ntotal simulated time — adaptive: {}  vs  full-parallelism: {}",
        report.total_sim_time, baseline_total
    );
    assert!(
        report.total_sim_time < baseline_total,
        "adaptive batching should beat full parallelism on this trace"
    );
    println!("adaptive batching wins: the tuner-driven former kept every");
    println!("machine under p·M while full parallelism paid the strain.");
}
