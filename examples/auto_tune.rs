//! The §5 cost-based tuning framework end to end: train light probe
//! workloads, fit the memory models with Levenberg–Marquardt, derive
//! the batch schedule from Equations 1–6, and compare against
//! Full-Parallelism.
//!
//! ```sh
//! cargo run --release --example auto_tune
//! ```

use mtvc::cluster::ClusterSpec;
use mtvc::graph::Dataset;
use mtvc::multitask::{run_job, BatchSchedule, JobSpec, Task};
use mtvc::systems::SystemKind;
use mtvc::tune::{tune, TunerConfig};

fn main() {
    let dataset = Dataset::Dblp;
    let graph = dataset.generate_default();
    let cluster = ClusterSpec::galaxy(4).scaled(dataset.info().default_scale as f64);
    let task = Task::bppr(5120);

    // Train + fit + schedule.
    let tuned = tune(
        &graph,
        task,
        SystemKind::PregelPlus,
        &cluster,
        &TunerConfig::default(),
    )
    .expect("tuning should succeed on this setting");

    println!(
        "peak-memory model:  M*(W)  = {:.3}*W^{:.3} + {:.0}",
        tuned.model.peak.a, tuned.model.peak.b, tuned.model.peak.c
    );
    println!(
        "residual model:     Mr*(W) = {:.3}*W^{:.3} + {:.0}",
        tuned.model.residual.a, tuned.model.residual.b, tuned.model.residual.c
    );
    println!("training cost: {}", tuned.training_time());
    println!(
        "optimized schedule (note the §5 monotone decrease): {:?}",
        tuned.schedule.batches()
    );

    // Execute both schemes.
    let optimized = run_job(
        &graph,
        &JobSpec::new(
            task,
            SystemKind::PregelPlus,
            cluster.clone(),
            tuned.schedule.clone(),
        ),
    );
    let full = run_job(
        &graph,
        &JobSpec::new(
            task,
            SystemKind::PregelPlus,
            cluster,
            BatchSchedule::full_parallelism(task.workload()),
        ),
    );
    println!("Full-Parallelism: {}", full.outcome);
    println!("Optimized:        {}", optimized.outcome);
}
