//! Fault injection end to end: BPPR batches under a seeded
//! [`FaultPlan`], recovered three ways —
//!
//! 1. **Checkpoint + replay** (engine): machine crashes and transient
//!    delivery failures roll the superstep loop back to the last
//!    snapshot and deterministically replay; the run's results and
//!    non-replay statistics are bit-identical to a fault-free run.
//! 2. **Degradation ladder** (batch executor): on a cluster too small
//!    for the full batch, the hard-OOM kill bisects the batch into
//!    narrower sub-batches until every unit task completes.
//! 3. **Retry budget** (service): requests whose batch failed are
//!    re-queued with exponential backoff; fault counters and recovery
//!    latency surface in the final service report.
//!
//! ```sh
//! cargo run --release --example chaos_demo
//! ```

use mtvc::cluster::{ClusterSpec, FaultPlan};
use mtvc::graph::generators;
use mtvc::metrics::{Bytes, OVERLOAD_CUTOFF};
use mtvc::multitask::{BatchRunner, RecoveryPolicy, Task};
use mtvc::serve::{ServiceConfig, TaskRequest, TaskService, TenantId};
use mtvc::systems::SystemKind;
use std::sync::Arc;

fn main() {
    let graph = Arc::new(generators::grid(24, 24));
    let system = SystemKind::PregelPlus;
    let cluster = ClusterSpec::galaxy(4);
    let shape = Task::bppr(1);
    let walks = 64u64;
    println!(
        "graph: {}-vertex grid, cluster: {} ({} machines), task: BPPR({} walks/node)\n",
        graph.num_vertices(),
        cluster.name,
        cluster.machines,
        walks
    );

    // ---- 1. checkpoint + replay under injected faults ------------------
    let plan = FaultPlan::none()
        .with_crash(3, 1)
        .with_delivery_failure(5, 0)
        .with_crash(7, 2);
    println!(
        "[1] superstep checkpointing: {} injected faults",
        plan.events().len()
    );

    let clean_runner = BatchRunner::new(Arc::clone(&graph), shape, system, cluster.clone());
    let clean = clean_runner.run_batch(walks, &[], &[0; 4], 42, OVERLOAD_CUTOFF);

    let chaos_runner = BatchRunner::new(Arc::clone(&graph), shape, system, cluster.clone())
        .with_faults(plan)
        .with_checkpoint_every(2);
    let chaos = chaos_runner.run_batch(walks, &[], &[0; 4], 42, OVERLOAD_CUTOFF);

    assert_eq!(clean.outcome, chaos.outcome, "recovery changed the outcome");
    assert_eq!(clean.time, chaos.time, "replay leaked into simulated time");
    let f = &chaos.stats.faults;
    println!(
        "    fault-free : {} rounds, {}",
        clean.stats.rounds, clean.time
    );
    println!(
        "    with faults: {} rounds first-run (identical), outcome preserved",
        chaos.stats.rounds
    );
    println!(
        "    recovery   : {} checkpoints, {} faults fired ({} crashes, {} lost deliveries)",
        f.checkpoints, f.injected, f.crashes, f.delivery_failures
    );
    println!(
        "    replay cost: {} rounds re-executed, {} wire messages resent, {} recovery time\n",
        f.replayed_rounds, f.replayed_wire, f.recovery_time
    );

    // ---- 2. hard-OOM kill and the degradation ladder -------------------
    // Size the cluster between the full batch's peak and its halves'
    // peaks: the wide attempt is killed, the bisected ladder completes.
    let wide = clean.peak_memory;
    let half_a = clean_runner.run_batch(walks / 2, &[], &[0; 4], 42, OVERLOAD_CUTOFF);
    let mut resid = vec![0u64; 4];
    for (r, d) in resid.iter_mut().zip(&half_a.residual_delta) {
        *r += d;
    }
    let half_b = clean_runner.run_batch(walks / 2, &[], &resid, 43, OVERLOAD_CUTOFF);
    let narrow = half_a.peak_memory.max(half_b.peak_memory);
    let mut small = cluster.clone();
    small.machine.memory = Bytes((narrow.get() + wide.get()) / 2);
    println!(
        "[2] degradation ladder: capacity {} sits between half-batch peak {} and full peak {}",
        small.machine.memory, narrow, wide
    );

    let ladder_runner = BatchRunner::new(Arc::clone(&graph), shape, system, small)
        .with_faults(FaultPlan::none().with_hard_oom());
    let rec = ladder_runner.run_batch_bisecting(
        walks,
        &[],
        &[0; 4],
        42,
        OVERLOAD_CUTOFF,
        &RecoveryPolicy::default(),
    );
    for step in &rec.ladder {
        println!("    width {:>3} -> {}", step.width, step.outcome);
    }
    assert!(rec.outcome.is_completed(), "ladder failed to recover");
    println!(
        "    recovered: {} OOM kills became {} censored refit points, batch completed in {}\n",
        rec.stats.faults.oom_kills,
        rec.censored.len(),
        rec.time
    );

    // ---- 3. the service under chaos ------------------------------------
    let chaos_plan = FaultPlan::none()
        .with_crash(3, 0)
        .with_delivery_failure(5, 2);
    println!(
        "[3] task service with per-batch chaos ({} faults/batch)",
        chaos_plan.events().len()
    );
    let mut cfg = ServiceConfig::new(system, cluster)
        .with_shape(shape)
        .with_workers(2)
        .with_quantum(16)
        .with_seed(0xC0DE)
        .with_checkpoint_every(2)
        .with_retry_budget(2)
        .with_chaos(chaos_plan);
    cfg.training_workload = 64;
    let svc = TaskService::start(Arc::clone(&graph), cfg).expect("service start");
    let tickets: Vec<_> = (0..18u32)
        .map(|i| {
            svc.submit(TaskRequest::new(TenantId(i % 3), Task::bppr(4)))
                .expect("submit")
        })
        .collect();
    for t in &tickets {
        assert!(t.wait().outcome.is_served(), "request lost under chaos");
    }
    let report = svc.shutdown();
    println!(
        "    served {}/{} requests across {} batches — 0 failed, {} retried",
        report.served,
        report.requests(),
        report.batches,
        report.retries
    );
    println!(
        "    faults injected: {}, rounds replayed: {}, OOM kills: {}",
        report.faults_injected, report.replayed_rounds, report.oom_kills
    );
    let (p50, p95, _) = report.recovery_latency.p50_p95_p99();
    println!(
        "    recovery latency p50/p95: {} / {} ms over {} faulted batches",
        p50,
        p95,
        report.recovery_latency.count()
    );
    println!("\nevery fault path recovered; no request was lost or served wrong results.");
}
