//! Quickstart: run a batched multi-processing job on a simulated
//! VC-system and read the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mtvc::cluster::ClusterSpec;
use mtvc::graph::Dataset;
use mtvc::multitask::{run_job, BatchSchedule, JobSpec, Task};
use mtvc::systems::SystemKind;

fn main() {
    // 1. A dataset: the DBLP co-author network stand-in at 1/256 scale.
    let dataset = Dataset::Dblp;
    let graph = dataset.generate_default();
    let sigma = dataset.info().default_scale;
    println!(
        "graph: {} ({} vertices, {} directed edges, avg degree {:.1})",
        dataset,
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // 2. A cluster: Galaxy-8, σ-scaled to match the dataset.
    let cluster = ClusterSpec::galaxy8().scaled(sigma as f64);
    println!("cluster: {cluster}");

    // 3. A multi-processing job: batch personalized PageRank with 4096
    //    α-decay walks per vertex, divided into 4 equal batches.
    let task = Task::bppr(4096);
    let spec = JobSpec::new(
        task,
        SystemKind::PregelPlus,
        cluster,
        BatchSchedule::equal(task.workload(), 4),
    );
    let result = run_job(&graph, &spec);

    // 4. Read the outcome and the statistics the paper reports.
    println!("outcome: {}", result.outcome);
    println!("rounds: {}", result.stats.rounds);
    println!(
        "messages: {} sent, {:.1}M per round (congestion)",
        result.stats.total_messages_sent,
        result.stats.congestion() / 1.0e6
    );
    println!("peak memory per machine: {}", result.stats.peak_memory);
    for (i, b) in result.per_batch.iter().enumerate() {
        println!(
            "  batch {}: workload {}, {}, residual after {}",
            i + 1,
            b.workload,
            b.outcome,
            mtvc::metrics::Bytes(b.residual_after)
        );
    }
}
