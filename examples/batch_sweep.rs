//! The round–congestion tradeoff: sweep the number of batches for one
//! workload and watch the optimum sit strictly between the extremes —
//! the paper's headline phenomenon (Figures 2–4).
//!
//! ```sh
//! cargo run --release --example batch_sweep
//! ```

use mtvc::cluster::ClusterSpec;
use mtvc::graph::Dataset;
use mtvc::metrics::{row, Table};
use mtvc::multitask::sweep::{batch_sweep, optimal_batches, sweep_series};
use mtvc::multitask::Task;
use mtvc::systems::SystemKind;

fn main() {
    let dataset = Dataset::Dblp;
    let graph = dataset.generate_default();
    let cluster = ClusterSpec::galaxy8().scaled(dataset.info().default_scale as f64);

    let mut table = Table::new(
        "running time vs #batches (BPPR, DBLP-like, Galaxy-8, Pregel+)",
        &[
            "workload",
            "batches",
            "time",
            "congestion (msgs/round)",
            "peak memory",
        ],
    );
    for workload in [1024u64, 10240, 12288] {
        let task = Task::bppr(workload);
        let points = batch_sweep(
            &graph,
            task,
            SystemKind::PregelPlus,
            &cluster,
            &[1, 2, 4, 8, 16],
            42,
        );
        for p in &points {
            table.row(row!(
                workload,
                p.batches,
                p.result.outcome,
                format!("{:.2e}", p.result.stats.congestion()),
                p.result.stats.peak_memory
            ));
        }
        let series = sweep_series(format!("W={workload}"), &points);
        println!(
            "W={workload}: optimal batch count = {:?}, monotone = {}",
            optimal_batches(&points),
            series.is_monotone_non_decreasing()
        );
    }
    table.print();
}
