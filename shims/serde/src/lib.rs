//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize` / `Deserialize` on its value types
//! but never serializes through a data format crate (no `serde_json`
//! etc. in the dependency tree), so the traits can be pure markers and
//! the derives can expand to nothing. Blanket impls keep any
//! `T: Serialize` bound satisfied. See `shims/README.md` for why the
//! workspace vendors shims at all.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

// The no-op derive macros live beside the traits, exactly as the real
// crate arranges it with the `derive` feature: `serde::Serialize` names
// both the trait and the derive macro.
pub use serde_derive::{Deserialize, Serialize};
