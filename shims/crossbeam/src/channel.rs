//! MPMC channels with the `crossbeam-channel` API subset the workspace
//! uses: `bounded` / `unbounded`, cloneable senders *and* receivers,
//! blocking and non-blocking operations, and disconnect semantics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

/// Error returned by [`Sender::send_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The channel stayed at capacity for the whole timeout.
    Timeout(T),
    /// Every receiver is gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// `None` for unbounded channels.
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::Acquire) == 0
    }
    fn disconnected_rx(&self) -> bool {
        self.receivers.load(Ordering::Acquire) == 0
    }
}

/// The sending half; cloneable (MPMC).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake receivers so they observe disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Block until the message is enqueued (or all receivers are gone).
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if self.shared.disconnected_rx() {
                return Err(SendError(msg));
            }
            match self.shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = self.shared.not_full.wait(queue).unwrap();
                }
                _ => {
                    queue.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Enqueue without blocking.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap();
        if self.shared.disconnected_rx() {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        queue.push_back(msg);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Block up to `timeout` for capacity, then enqueue.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if self.shared.disconnected_rx() {
                return Err(SendTimeoutError::Disconnected(msg));
            }
            match self.shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(SendTimeoutError::Timeout(msg));
                    }
                    let (q, _) = self
                        .shared
                        .not_full
                        .wait_timeout(queue, deadline - now)
                        .unwrap();
                    queue = q;
                }
                _ => {
                    queue.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives (or all senders are gone and the
    /// queue drains).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.disconnected_tx() {
                return Err(RecvError);
            }
            queue = self.shared.not_empty.wait(queue).unwrap();
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        if let Some(msg) = queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if self.shared.disconnected_tx() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.disconnected_tx() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, _) = self
                .shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap();
            queue = q;
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Channel holding at most `cap` in-flight messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

/// Channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        rx.recv().unwrap();
        tx.try_send(3).unwrap();
    }

    #[test]
    fn recv_fails_after_last_sender_drops() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_consumes_each_message_once() {
        let (tx, rx) = bounded(4);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..1000u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn send_timeout_times_out_when_full_then_succeeds() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let r = tx.send_timeout(2, Duration::from_millis(10));
        assert_eq!(r, Err(SendTimeoutError::Timeout(2)));
        rx.recv().unwrap();
        tx.send_timeout(2, Duration::from_millis(10)).unwrap();
        drop(rx);
        let r = tx.send_timeout(3, Duration::from_millis(10));
        assert_eq!(r, Err(SendTimeoutError::Disconnected(3)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u8>(1);
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
    }
}
