//! Offline stand-in for the `crossbeam` 0.8 API subset this workspace
//! uses: [`thread::scope`] (over `std::thread::scope`) and the MPMC
//! [`channel`] module (over a mutex-protected deque). See
//! `shims/README.md` for why the workspace vendors shims.

pub mod channel;
pub mod thread;
