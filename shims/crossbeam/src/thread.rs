//! Scoped threads with the crossbeam calling convention (`spawn`
//! closures receive the scope), implemented on `std::thread::scope`.

use std::any::Any;

/// Error payload of a panicked scope (crossbeam returns the first
/// panic; the std implementation re-raises instead, so this is only a
/// type-level stand-in).
pub type ScopeError = Box<dyn Any + Send + 'static>;

/// A scope handle; crossbeam passes it both to the `scope` closure and
/// to every spawned closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a thread spawned within a [`Scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to this scope. As in crossbeam, the closure
    /// receives the scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Run `f` with a scope whose spawned threads are all joined before
/// `scope` returns. Unlike crossbeam, a panic in an unjoined thread
/// propagates as a panic rather than an `Err` (the workspace always
/// joins explicitly, so the difference is unobservable here).
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
