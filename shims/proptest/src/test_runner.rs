//! Test-case failure plumbing (`TestCaseError` subset).

use std::fmt;

/// Why a generated case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed assertion or rejected case with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> TestCaseError {
        TestCaseError(e.to_string())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;
