//! Offline mini property-testing harness exposing the `proptest` API
//! subset this workspace uses: the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros, [`Strategy`] over numeric ranges, tuples
//! and [`collection::vec`], [`any`], [`Just`], and
//! [`ProptestConfig::with_cases`].
//!
//! Unlike the real crate there is no shrinking and no persisted
//! regression seeds: cases are generated from a seed derived
//! deterministically from the test name and case index, so every run
//! (local or CI) explores the identical sequence and failures reproduce
//! exactly. See `shims/README.md` for why the workspace vendors shims.

use rand::rngs::SmallRng;

pub mod test_runner;

pub use test_runner::{TestCaseError, TestCaseResult};

/// Runner configuration (`with_cases` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

/// Strategy producing a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

mod ranges;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let u = (rand::RngCore::next_u64(rng) >> 11) as f64 / (1u64 << 53) as f64;
        let mag = (u * 600.0 - 300.0).exp2();
        if rand::RngCore::next_u64(rng) & 1 == 1 {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy for any value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

pub mod collection {
    //! Collection strategies (`vec` subset).

    use super::{SmallRng, Strategy};

    /// Length range for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// FNV-1a over the test name: the per-test base seed.
#[doc(hidden)]
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

#[doc(hidden)]
pub fn case_rng(name: &str, case: u32) -> SmallRng {
    use rand::SeedableRng;
    SmallRng::seed_from_u64(seed_of(name) ^ ((case as u64) << 32 | 0x5EED))
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
    )*};
}

/// Fallible assertion: fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), l, r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if l == r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2i64..=2, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(list in prop::collection::vec((0u32..10, 0u32..10), 0..20)) {
            prop_assert!(list.len() < 20);
            for &(a, b) in &list {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn any_and_just(seed in any::<u64>(), k in Just(7usize)) {
            prop_assert_eq!(k, 7);
            let _ = seed;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::Strategy;
        let mut a = crate::case_rng("t", 0);
        let mut b = crate::case_rng("t", 0);
        assert_eq!((0u64..100).sample(&mut a), (0u64..100).sample(&mut b));
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failure_reports_case() {
        crate::proptest! {
            #![proptest_config(crate::ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u64..10) {
                crate::prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
