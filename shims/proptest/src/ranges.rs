//! `Strategy` implementations for numeric range expressions
//! (`1u64..100`, `0.0f64..=1.0`, …).

use crate::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
