//! Offline stand-in for `parking_lot`: `Mutex`, `RwLock`, and `Condvar`
//! with the poison-free API, wrapping `std::sync`. Poisoning is
//! swallowed by taking the inner guard from a poisoned error — matching
//! parking_lot's semantics, where a panicked holder does not poison the
//! lock. See `shims/README.md` for why the workspace vendors shims.

use std::sync::{self, PoisonError};
use std::time::Duration;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in an rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Release the guard's lock and sleep until notified. parking_lot
    /// re-locks in place; the std wrapper swaps the guard instead.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Timed wait; reports whether it timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_mut(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replace `*slot` through a consuming closure. Aborts the process if
/// `f` panics (the value would otherwise be duplicated) — acceptable
/// here because the closure only forwards to `Condvar::wait`.
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct Abort;
    impl Drop for Abort {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = Abort;
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
