//! Offline stand-in for `criterion` with the API subset this workspace
//! uses: [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs a short
//! calibration pass and reports the mean wall-clock time per iteration
//! — enough to compare hot paths locally while staying dependency-free.
//! See `shims/README.md` for why the workspace vendors shims.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not used to batch
/// — every iteration re-runs setup, matching `PerIteration`).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup before every iteration.
    PerIteration,
}

/// Per-benchmark timing driver.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter*`.
    mean_ns: f64,
    iters: u64,
}

const TARGET: Duration = Duration::from_millis(300);

/// Smoke-test mode, as in real criterion: `--test` on the bench binary's
/// command line runs every routine exactly once, without calibration —
/// CI uses it to prove benches still execute without paying for a
/// measurement.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Bencher {
    /// Time `routine` repeatedly and record the mean.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if test_mode() {
            let start = Instant::now();
            black_box(routine());
            self.mean_ns = start.elapsed().as_nanos() as f64;
            self.iters = 1;
            return;
        }
        // Calibrate: grow the iteration count until the measurement
        // window is long enough to trust.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET || n >= 1 << 24 {
                self.mean_ns = elapsed.as_nanos() as f64 / n as f64;
                self.iters = n;
                return;
            }
            n = (n * 4).max(4);
        }
    }

    /// Time `routine` with a fresh `setup()` input per iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        if test_mode() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.mean_ns = start.elapsed().as_nanos() as f64;
            self.iters = 1;
            return;
        }
        let mut n = 1u64;
        loop {
            let mut busy = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                busy += start.elapsed();
            }
            if busy >= TARGET || n >= 1 << 20 {
                self.mean_ns = busy.as_nanos() as f64 / n as f64;
                self.iters = n;
                return;
            }
            n = (n * 4).max(4);
        }
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; the shim ignores sampling config.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores sampling config.
    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores sampling config.
    pub fn warm_up_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Run one named benchmark and print its mean time.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        let (value, unit) = if b.mean_ns >= 1e9 {
            (b.mean_ns / 1e9, "s")
        } else if b.mean_ns >= 1e6 {
            (b.mean_ns / 1e6, "ms")
        } else if b.mean_ns >= 1e3 {
            (b.mean_ns / 1e3, "µs")
        } else {
            (b.mean_ns, "ns")
        };
        println!("{id:<40} {value:>10.3} {unit}/iter  ({} iters)", b.iters);
        self
    }
}

/// Define a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
    }
}
