//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen` / `gen_range` / `gen_bool`.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors this shim instead (see `shims/README.md`).
//! `SmallRng` is the same generator real `rand` 0.8 uses on 64-bit
//! targets — xoshiro256++ seeded through SplitMix64 — so streams are
//! statistically equivalent to the upstream crate.

pub mod rngs;

pub use rngs::SmallRng;

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches rand 0.8's
    /// `Standard` for `f64`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Lemire's multiply-shift keeps the draw unbiased enough
                // for simulation workloads without a rejection loop.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t; // full-width range
                }
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        <f64 as StandardSample>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn float_range_covers_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.9f64..0.9);
            assert!((-0.9..0.9).contains(&x));
            lo_seen |= x < -0.5;
            hi_seen |= x > 0.5;
        }
        assert!(lo_seen && hi_seen);
    }
}
