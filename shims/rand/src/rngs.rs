//! The `SmallRng` generator: xoshiro256++ (what rand 0.8 uses for
//! `SmallRng` on 64-bit targets), seeded through SplitMix64.

use crate::{RngCore, SeedableRng};

/// Small, fast, non-cryptographic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
