//! Cross-crate integration tests: each of the paper's headline insights
//! must hold end-to-end on small, fast settings. The benchmark harness
//! demonstrates the same effects at paper-figure scale; these tests pin
//! them down in CI time.

use mtvc::cluster::ClusterSpec;
use mtvc::graph::Dataset;
use mtvc::multitask::sweep::{batch_sweep, optimal_batches};
use mtvc::multitask::{run_job, BatchSchedule, JobSpec, Task};
use mtvc::systems::SystemKind;
use mtvc::tune::{tune, TunerConfig};

fn dblp_small() -> (mtvc::graph::Graph, f64) {
    // 1/1024 scale: ~600 vertices, fast enough for tests.
    let scale = 1024u64;
    (Dataset::Dblp.generate(scale), scale as f64)
}

#[test]
fn round_congestion_tradeoff_is_real() {
    let (g, sigma) = dblp_small();
    let cluster = ClusterSpec::galaxy8().scaled(sigma);
    let points = batch_sweep(
        &g,
        Task::bppr(512),
        SystemKind::PregelPlus,
        &cluster,
        &[1, 4],
        1,
    );
    let one = &points[0].result.stats;
    let four = &points[1].result.stats;
    // Same work, more rounds, less congestion.
    assert!(four.rounds > one.rounds);
    assert!(four.congestion() < one.congestion());
    let ratio = one.total_messages_sent as f64 / four.total_messages_sent as f64;
    assert!(
        (0.9..1.1).contains(&ratio),
        "total messages should match: {ratio}"
    );
}

#[test]
fn full_parallelism_suboptimal_under_memory_pressure() {
    let (g, sigma) = dblp_small();
    let cluster = ClusterSpec::galaxy(4).scaled(sigma);
    // Heavy enough to thrash a 4-machine scaled cluster in one batch
    // (residual still fits, so batching can rescue the job).
    let points = batch_sweep(
        &g,
        Task::bppr(6144),
        SystemKind::PregelPlus,
        &cluster,
        &[1, 2, 4, 8],
        2,
    );
    let best = optimal_batches(&points).unwrap();
    assert!(best > 1, "expected batching to win, optimum was {best}");
}

#[test]
fn light_workloads_favor_full_parallelism() {
    let (g, sigma) = dblp_small();
    let cluster = ClusterSpec::galaxy8().scaled(sigma);
    let points = batch_sweep(
        &g,
        Task::bppr(128),
        SystemKind::PregelPlus,
        &cluster,
        &[1, 2, 4, 8],
        3,
    );
    assert_eq!(optimal_batches(&points), Some(1));
}

#[test]
fn async_loses_heavy_multiprocessing_but_wins_light_single_task() {
    let (g, sigma) = dblp_small();
    let cluster = ClusterSpec::galaxy(8).scaled(sigma);
    let heavy = |kind: SystemKind| {
        let task = Task::bppr(2048);
        run_job(
            &g,
            &JobSpec::new(
                task,
                kind,
                cluster.clone(),
                BatchSchedule::full_parallelism(2048),
            ),
        )
        .plot_time()
        .as_secs()
    };
    let sync_t = heavy(SystemKind::GraphLab);
    let async_t = heavy(SystemKind::GraphLabAsync);
    assert!(
        async_t > sync_t,
        "async should lose heavy BPPR: async {async_t} vs sync {sync_t}"
    );
}

#[test]
fn graphd_is_immune_to_memory_overflow() {
    let (g, sigma) = dblp_small();
    let cluster = ClusterSpec::galaxy(2).scaled(sigma);
    // This workload overflows the in-memory system on 2 machines...
    let task = Task::bppr(32768);
    let inmem = run_job(
        &g,
        &JobSpec::new(
            task,
            SystemKind::PregelPlus,
            cluster.clone(),
            BatchSchedule::full_parallelism(task.workload()),
        ),
    );
    assert!(
        !inmem.outcome.is_completed(),
        "expected the in-memory system to fail, got {:?}",
        inmem.outcome
    );
    // ...while the out-of-core system degrades to disk instead.
    let ooc = run_job(
        &g,
        &JobSpec::new(
            task,
            SystemKind::GraphD,
            cluster,
            BatchSchedule::full_parallelism(task.workload()),
        ),
    );
    assert!(
        !ooc.outcome.is_overflow(),
        "GraphD must never hard-overflow, got {:?}",
        ooc.outcome
    );
    assert!(ooc.stats.total_spilled_bytes.get() > 0);
}

#[test]
fn mirroring_reduces_network_traffic_for_broadcast_tasks() {
    let (g, sigma) = dblp_small();
    let cluster = ClusterSpec::galaxy(8).scaled(sigma);
    let task = Task::bkhs(64);
    let run = |kind: SystemKind| {
        run_job(
            &g,
            &JobSpec::new(
                task,
                kind,
                cluster.clone(),
                BatchSchedule::full_parallelism(64),
            ),
        )
    };
    // Pregel+(mirror) uses the broadcast BKHS; compare its network
    // bytes against plain Pregel+ on the same task. Mirrors cut the
    // per-neighbor wire cost of high-degree vertices.
    let plain = run(SystemKind::PregelPlus);
    let mirror = run(SystemKind::PregelPlusMirror);
    assert!(plain.outcome.is_completed() && mirror.outcome.is_completed());
    assert!(
        mirror.stats.total_network_bytes < plain.stats.total_network_bytes,
        "mirroring should save network bytes: {} vs {}",
        mirror.stats.total_network_bytes,
        plain.stats.total_network_bytes
    );
}

#[test]
fn unequal_batches_optimum_has_heavier_first_batch() {
    let (g, sigma) = dblp_small();
    let cluster = ClusterSpec::galaxy(4).scaled(sigma);
    let total = 8192u64;
    let points = mtvc::multitask::unequal::two_batch_delta_sweep(
        &g,
        Task::bppr(total),
        SystemKind::PregelPlus,
        &cluster,
        &[-4096, -2048, 0, 2048, 4096],
        5,
    );
    let best = points
        .iter()
        .min_by(|a, b| {
            a.combined
                .plot_time()
                .as_secs()
                .partial_cmp(&b.combined.plot_time().as_secs())
                .unwrap()
        })
        .unwrap();
    assert!(
        best.delta >= 0,
        "best delta {} should favour batch 1",
        best.delta
    );
}

#[test]
fn tuned_schedule_completes_where_full_parallelism_fails() {
    let (g, sigma) = dblp_small();
    let cluster = ClusterSpec::galaxy(2).scaled(sigma);
    let task = Task::bppr(4096);
    let fp = run_job(
        &g,
        &JobSpec::new(
            task,
            SystemKind::PregelPlus,
            cluster.clone(),
            BatchSchedule::full_parallelism(task.workload()),
        ),
    );
    assert!(
        !fp.outcome.is_completed(),
        "setting should break FP: {:?}",
        fp.outcome
    );

    let tuned = tune(
        &g,
        task,
        SystemKind::PregelPlus,
        &cluster,
        &TunerConfig::default(),
    )
    .expect("tuning should succeed");
    let opt = run_job(
        &g,
        &JobSpec::new(
            task,
            SystemKind::PregelPlus,
            cluster,
            tuned.schedule.clone(),
        ),
    );
    assert!(
        opt.outcome.is_completed(),
        "tuned schedule {:?} should complete, got {:?}",
        tuned.schedule.batches(),
        opt.outcome
    );
    // Training stays light relative to the evaluation run.
    assert!(tuned.training_time().as_secs() < opt.outcome.plot_time().as_secs());
}

#[test]
fn all_seven_systems_run_all_three_tasks() {
    let (g, sigma) = dblp_small();
    for kind in SystemKind::ALL {
        let cluster = ClusterSpec::galaxy(4).scaled(sigma);
        for task in [Task::bppr(32), Task::mssp(16), Task::bkhs(16)] {
            let spec = JobSpec::new(
                task,
                kind,
                cluster.clone(),
                BatchSchedule::equal(task.workload(), 2),
            );
            let r = run_job(&g, &spec);
            assert!(
                r.outcome.is_completed(),
                "{kind} failed {task}: {:?}",
                r.outcome
            );
            assert!(
                r.stats.total_messages_sent > 0,
                "{kind} sent no messages for {task}"
            );
        }
    }
}

#[test]
fn monetary_cost_is_time_times_rate() {
    let (g, sigma) = dblp_small();
    let cluster = ClusterSpec::docker(8).scaled(sigma);
    let task = Task::bppr(256);
    let r = run_job(
        &g,
        &JobSpec::new(
            task,
            SystemKind::PregelPlus,
            cluster.clone(),
            BatchSchedule::equal(256, 2),
        ),
    );
    let expected =
        r.outcome.plot_time().as_secs() * cluster.machine.credit_rate * cluster.machines as f64;
    assert!((r.cost.credits - expected).abs() < 1e-9);
}

#[test]
fn deterministic_end_to_end() {
    let (g, sigma) = dblp_small();
    let cluster = ClusterSpec::galaxy(4).scaled(sigma);
    let spec = JobSpec::new(
        Task::bppr(512),
        SystemKind::PregelPlus,
        cluster,
        BatchSchedule::equal(512, 4),
    );
    let a = run_job(&g, &spec);
    let b = run_job(&g, &spec);
    assert_eq!(a.stats.total_messages_sent, b.stats.total_messages_sent);
    assert_eq!(a.stats.peak_memory, b.stats.peak_memory);
    assert_eq!(a.plot_time(), b.plot_time());
}
