//! Public-API surface tests through the `mtvc` façade: everything a
//! downstream user would reach for must be importable and usable
//! together.

use mtvc::cluster::{ClusterSpec, CostModel, MachineSpec, MonetaryCost, RoundDemand};
use mtvc::engine::{EngineConfig, Runner, SystemProfile};
use mtvc::graph::partition::{HashPartitioner, Partitioner};
use mtvc::graph::{generators, Dataset, DegreeStats, GraphBuilder};
use mtvc::metrics::{Bytes, RunOutcome, Series, SimTime, Table};
use mtvc::multitask::{check_ppa, run_job, BatchSchedule, JobSpec, PpaCriteria, Task};
use mtvc::systems::SystemKind;
use mtvc::tasks::bkhs::BkhsCounts;
use mtvc::tasks::bppr::BpprEstimates;
use mtvc::tasks::mssp::MsspDistances;
use mtvc::tasks::{
    BkhsProgram, BpprProgram, ConnectedComponentsProgram, MsspProgram, PageRankProgram, SourceSet,
};
use mtvc::tune::{gauge_max_workload, tune, TrialVerdict, TunerConfig};

fn tiny_engine(machines: usize) -> EngineConfig {
    let mut cfg = EngineConfig::new(ClusterSpec::galaxy(machines), SystemProfile::base("api"));
    cfg.cutoff = SimTime::secs(1e12);
    cfg
}

#[test]
fn task_result_extractors_compose() {
    let g = generators::power_law(120, 500, 2.4, 101);
    assert_eq!(HashPartitioner::default().name(), "hash");
    let runner = Runner::new(&g, &HashPartitioner::default(), tiny_engine(3));

    // BPPR estimates.
    let bppr = runner.run(&BpprProgram::new(200, 0.2).with_sources(SourceSet::subset(vec![0])));
    assert!(bppr.outcome.is_completed());
    let mut est = BpprEstimates::new(g.num_vertices());
    est.absorb(bppr.states, 200);
    assert_eq!(est.total_stopped(), 200);
    assert!(est.ppr(0, 0) > 0.0, "source should retain some stop mass");

    // MSSP distances.
    let mssp = runner.run(&MsspProgram::new(vec![5, 9]));
    let dist = MsspDistances::new(mssp.states);
    assert_eq!(dist.dist(0, 5), Some(0));
    assert_eq!(dist.dist(1, 9), Some(0));
    assert!(dist.total_entries() > 2);

    // BKHS counts.
    let bkhs = runner.run(&BkhsProgram::new(vec![5], 2));
    let counts = BkhsCounts::from_states(&bkhs.states);
    assert!(counts.count(0) > g.degree(5) as u64);

    // Connected components + PageRank run through the same runner.
    assert!(runner
        .run(&ConnectedComponentsProgram)
        .outcome
        .is_completed());
    assert!(runner
        .run(&PageRankProgram::default())
        .outcome
        .is_completed());
}

#[test]
fn cost_model_is_directly_usable() {
    let model = CostModel::default();
    let spec = MachineSpec::docker();
    let mut demand = RoundDemand::zeros(4, true);
    demand.compute_ops = vec![1e6; 4];
    demand.net_out = vec![Bytes::mib(1); 4];
    demand.net_in = vec![Bytes::mib(1); 4];
    demand.memory = vec![Bytes::gib(1); 4];
    let charge = model.charge(&spec, &demand).expect("healthy demand");
    assert!(charge.duration > SimTime::ZERO);
    assert_eq!(charge.thrash_factor, 1.0);
}

#[test]
fn monetary_cost_composes_with_outcomes() {
    let cluster = ClusterSpec::docker32();
    let ok = MonetaryCost::of_run(RunOutcome::Completed(SimTime::secs(100.0)), &cluster);
    let bad = MonetaryCost::of_run(RunOutcome::Overload, &cluster);
    let total = ok + bad;
    assert!(total.lower_bound);
    assert!(total.credits > bad.credits);
}

#[test]
fn dataset_presets_compose_with_jobs() {
    let g = Dataset::WebSt.generate(2048);
    let stats = DegreeStats::of(&g);
    assert!(stats.skew > 1.0, "web graph should be skewed");
    let cluster = ClusterSpec::galaxy(2).scaled(2048.0);
    let task = Task::mssp(8);
    let r = run_job(
        &g,
        &JobSpec::new(
            task,
            SystemKind::GraphLab,
            cluster,
            BatchSchedule::equal(8, 2),
        ),
    );
    assert!(r.outcome.is_completed());
}

#[test]
fn gauge_and_tuner_share_vocabulary() {
    let g = Dataset::Dblp.generate(2048);
    let cluster = ClusterSpec::galaxy(2).scaled(2048.0);
    let gauge = gauge_max_workload(
        &g,
        Task::bppr(1),
        SystemKind::PregelPlus,
        &cluster,
        1 << 15,
        9,
    );
    assert!(gauge.max_healthy_workload >= 1);
    assert!(gauge
        .trials
        .iter()
        .any(|(_, v)| *v != TrialVerdict::Healthy || gauge.max_healthy_workload == 1 << 15));
    // The tuner should schedule at least the gauged healthy workload
    // into its first batch (both derive from the same memory ceiling).
    if let Ok(tuned) = tune(
        &g,
        Task::bppr(gauge.max_healthy_workload.max(4)),
        SystemKind::PregelPlus,
        &cluster,
        &TunerConfig::default(),
    ) {
        assert_eq!(tuned.schedule.total(), gauge.max_healthy_workload.max(4));
    }
}

#[test]
fn ppa_checker_reachable_through_facade() {
    let g = generators::ring(64, true);
    let r = run_job(
        &g,
        &JobSpec::new(
            Task::bppr(4),
            SystemKind::PregelPlus,
            ClusterSpec::galaxy(2),
            BatchSchedule::full_parallelism(4),
        ),
    );
    let report = check_ppa(&g, &r.stats, PpaCriteria::default());
    // 4 walks/node on a ring: communication fine, rounds fine.
    assert!(report.comm_ok);
}

#[test]
fn graph_builder_and_parser_roundtrip() {
    let mut b = GraphBuilder::new(4).undirected(true);
    b.add_weighted_edge(0, 1, 3);
    b.add_weighted_edge(1, 2, 4);
    let g = b.build();
    // Serialize as an edge list and re-parse.
    let mut text = String::new();
    for v in g.vertices() {
        for (t, w) in g.weighted_neighbors(v) {
            text.push_str(&format!("{v} {t} {w}\n"));
        }
    }
    let g2 = GraphBuilder::parse_edge_list(4, &text).unwrap();
    assert_eq!(g, g2);
}

#[test]
fn reporting_utilities_work_end_to_end() {
    let mut t = Table::new("api", &["k", "v"]);
    t.row(mtvc::metrics::row!("x", 1));
    assert!(t.render().contains("api"));
    assert!(t.to_csv().starts_with("k,v"));
    assert!(t.to_markdown().contains("| k | v |"));
    let s = Series::with_values("t", vec![3.0, 1.0, 2.0]);
    assert_eq!(s.argmin(), Some(1));
    assert_eq!(s.summary().max, 3.0);
}

#[test]
fn seven_systems_expose_consistent_metadata() {
    let spec = MachineSpec::galaxy();
    for kind in SystemKind::ALL {
        let profile = kind.profile(&spec);
        assert_eq!(profile.name, kind.name());
        assert_eq!(profile.out_of_core.is_some(), kind.is_out_of_core());
        assert_eq!(profile.mode.is_broadcast(), kind.is_broadcast());
        let p = kind.partitioner();
        assert!(!p.name().is_empty());
    }
}
